// Stripe layout: maps (stripe, codeword column) to (disk, byte offset) with
// left-symmetric parity rotation, and logical byte addresses to stripe
// coordinates.
//
// Rotation spreads P/Q across all n = k+2 disks so small-write parity
// traffic does not hammer two spindles (the classic RAID-5/6 layout, and
// the organization Fig. 1 of the paper depicts).
#pragma once

#include <cstddef>
#include <cstdint>

#include "liberation/util/assert.hpp"

namespace liberation::raid {

struct strip_location {
    std::uint32_t disk = 0;
    std::size_t offset = 0;  ///< byte offset of the strip on that disk
};

/// How codeword columns map to physical disks.
enum class parity_layout : std::uint8_t {
    /// Left-symmetric rotation: the column pattern shifts one disk per
    /// stripe, spreading parity I/O evenly. Standard for fixed-size arrays.
    rotating,
    /// P on disk 0, Q on disk 1, data column j on disk j+2, no rotation.
    /// Required for online growth: a freshly zeroed disk appended at the
    /// end becomes data column k, and — because a Liberation code with
    /// fixed p treats absent columns as phantom zeros — every existing
    /// parity strip remains valid without recomputation (paper Section
    /// III, "Case (b)").
    parity_first,
};

struct logical_location {
    std::size_t stripe = 0;
    std::uint32_t data_column = 0;  ///< codeword data column (0..k-1)
    std::uint32_t row = 0;          ///< element row within the strip
    std::size_t byte_in_element = 0;
};

class stripe_map {
public:
    /// rows = elements per strip (code's w), element_size in bytes.
    stripe_map(std::uint32_t k, std::uint32_t rows, std::size_t element_size,
               std::size_t stripes,
               parity_layout layout = parity_layout::rotating) noexcept
        : k_(k),
          rows_(rows),
          elem_(element_size),
          stripes_(stripes),
          layout_(layout) {
        LIBERATION_EXPECTS(k >= 1 && rows >= 1 && element_size > 0 &&
                           stripes > 0);
    }

    [[nodiscard]] parity_layout layout() const noexcept { return layout_; }

    [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
    [[nodiscard]] std::uint32_t n() const noexcept { return k_ + 2; }
    [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t element_size() const noexcept { return elem_; }
    [[nodiscard]] std::size_t stripes() const noexcept { return stripes_; }

    [[nodiscard]] std::size_t strip_size() const noexcept {
        return static_cast<std::size_t>(rows_) * elem_;
    }
    /// User-visible bytes per stripe.
    [[nodiscard]] std::size_t stripe_data_size() const noexcept {
        return strip_size() * k_;
    }
    /// Total user-visible capacity.
    [[nodiscard]] std::size_t capacity() const noexcept {
        return stripe_data_size() * stripes_;
    }
    /// Per-disk capacity needed.
    [[nodiscard]] std::size_t disk_capacity() const noexcept {
        return strip_size() * stripes_;
    }

    /// Disk holding codeword column `col` of `stripe`.
    [[nodiscard]] strip_location locate(std::size_t stripe,
                                        std::uint32_t col) const noexcept {
        LIBERATION_EXPECTS(stripe < stripes_ && col < n());
        if (layout_ == parity_layout::parity_first) {
            const std::uint32_t disk = col < k_ ? col + 2 : col - k_;
            return {disk, stripe * strip_size()};
        }
        const auto shift = static_cast<std::uint32_t>(stripe % n());
        return {(col + shift) % n(), stripe * strip_size()};
    }

    /// Inverse of locate(): which codeword column does `disk` hold?
    [[nodiscard]] std::uint32_t column_of_disk(std::size_t stripe,
                                               std::uint32_t disk) const noexcept {
        LIBERATION_EXPECTS(stripe < stripes_ && disk < n());
        if (layout_ == parity_layout::parity_first) {
            return disk < 2 ? k_ + disk : disk - 2;
        }
        const auto shift = static_cast<std::uint32_t>(stripe % n());
        return (disk + n() - shift) % n();
    }

    /// Decompose a logical byte address.
    [[nodiscard]] logical_location locate_logical(std::size_t addr) const noexcept {
        LIBERATION_EXPECTS(addr < capacity());
        logical_location loc;
        loc.stripe = addr / stripe_data_size();
        const std::size_t in_stripe = addr % stripe_data_size();
        loc.data_column = static_cast<std::uint32_t>(in_stripe / strip_size());
        const std::size_t in_strip = in_stripe % strip_size();
        loc.row = static_cast<std::uint32_t>(in_strip / elem_);
        loc.byte_in_element = in_strip % elem_;
        return loc;
    }

private:
    std::uint32_t k_;
    std::uint32_t rows_;
    std::size_t elem_;
    std::size_t stripes_;
    parity_layout layout_;
};

}  // namespace liberation::raid
