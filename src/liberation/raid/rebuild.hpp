// Rebuild engine: reconstructs the contents of replaced disks stripe by
// stripe (optionally in parallel), using the optimal Liberation decoder.
//
// This is where decoding throughput (paper Figs. 12-13) translates into an
// operational metric: rebuild time under one- and two-disk failures.
#pragma once

#include <cstdint>
#include <limits>

#include "liberation/raid/array.hpp"
#include "liberation/util/thread_pool.hpp"

namespace liberation::raid {

struct rebuild_result {
    static constexpr std::size_t npos = std::numeric_limits<std::size_t>::max();

    std::size_t stripes_rebuilt = 0;
    std::size_t columns_rebuilt = 0;
    /// Stripes that could not be reconstructed (> 2 unavailable columns or
    /// a failed write-back). One unreadable stripe is partial data loss;
    /// callers can tell it apart from total loss instead of a bare flag.
    std::size_t stripes_failed = 0;
    /// Lowest-numbered failing stripe, npos when stripes_failed == 0.
    std::size_t first_failed_stripe = npos;
    std::uint64_t bytes_written = 0;
    double seconds = 0.0;
    bool success = false;  ///< stripes_failed == 0

    [[nodiscard]] double throughput_gbps() const noexcept {
        return seconds > 0 ? static_cast<double>(bytes_written) / seconds / 1e9
                           : 0.0;
    }
};

/// Rebuild every stripe column residing on the given (already replaced)
/// disks. `pool` may be null for single-threaded rebuild. Stripes with more
/// than two unavailable columns are counted in `stripes_failed` (success =
/// false) but the rest of the disk is still rebuilt.
rebuild_result rebuild_disks(raid6_array& array,
                             std::span<const std::uint32_t> replaced_disks,
                             util::thread_pool* pool = nullptr);

/// Rebuild only stripes [first, last) — the incremental unit behind the
/// array's background hot-spare rebuild, which interleaves batches of
/// stripes with foreground I/O (md's recovery window).
rebuild_result rebuild_stripe_range(raid6_array& array,
                                    std::span<const std::uint32_t> replaced_disks,
                                    std::size_t first, std::size_t last,
                                    util::thread_pool* pool = nullptr);

/// Convenience: fail + replace + rebuild one disk.
rebuild_result fail_replace_rebuild(raid6_array& array, std::uint32_t disk,
                                    util::thread_pool* pool = nullptr);

/// I/O-optimal single-disk rebuild: reads only the elements named by the
/// hybrid row/anti-diagonal plan (core/hybrid_rebuild.hpp) instead of the
/// full surviving stripe — ~20-25% fewer bytes read at k = p. Requires
/// every other disk to be healthy. `bytes_read` of the disks' stats shows
/// the saving against rebuild_disks.
rebuild_result rebuild_single_disk_hybrid(raid6_array& array,
                                          std::uint32_t disk);

}  // namespace liberation::raid
