// Rebuild engine: reconstructs the contents of replaced disks stripe by
// stripe (optionally in parallel), using the optimal Liberation decoder.
//
// This is where decoding throughput (paper Figs. 12-13) translates into an
// operational metric: rebuild time under one- and two-disk failures.
#pragma once

#include <cstdint>

#include "liberation/raid/array.hpp"
#include "liberation/util/thread_pool.hpp"

namespace liberation::raid {

struct rebuild_result {
    std::size_t stripes_rebuilt = 0;
    std::size_t columns_rebuilt = 0;
    std::uint64_t bytes_written = 0;
    double seconds = 0.0;
    bool success = false;

    [[nodiscard]] double throughput_gbps() const noexcept {
        return seconds > 0 ? static_cast<double>(bytes_written) / seconds / 1e9
                           : 0.0;
    }
};

/// Rebuild every stripe column residing on the given (already replaced)
/// disks. `pool` may be null for single-threaded rebuild. Fails (success =
/// false) if any stripe has more than two unavailable columns.
rebuild_result rebuild_disks(raid6_array& array,
                             std::span<const std::uint32_t> replaced_disks,
                             util::thread_pool* pool = nullptr);

/// Convenience: fail + replace + rebuild one disk.
rebuild_result fail_replace_rebuild(raid6_array& array, std::uint32_t disk,
                                    util::thread_pool* pool = nullptr);

/// I/O-optimal single-disk rebuild: reads only the elements named by the
/// hybrid row/anti-diagonal plan (core/hybrid_rebuild.hpp) instead of the
/// full surviving stripe — ~20-25% fewer bytes read at k = p. Requires
/// every other disk to be healthy. `bytes_read` of the disks' stats shows
/// the saving against rebuild_disks.
rebuild_result rebuild_single_disk_hybrid(raid6_array& array,
                                          std::uint32_t disk);

}  // namespace liberation::raid
