#include "liberation/raid/scrubber.hpp"

#include <utility>
#include <vector>

#include "liberation/aio/stripe_io.hpp"
#include "liberation/core/error_correction.hpp"

namespace liberation::raid {

namespace {

// Accounting tail shared by the synchronous and pipelined scrub loops:
// everything that happens to one stripe after its verified load.
void account_stripe(raid6_array& array, scrub_summary& summary, std::size_t s,
                    const codes::stripe_view& v,
                    const raid6_array::stripe_recovery& rec) {
    const std::uint32_t k = array.map().k();
    const std::size_t strip = array.map().strip_size();
    if (rec.verified) {
        // Single-pass byte accounting: the checksum-first sweep traversed
        // every readable column exactly once (CRC32C fused into the same
        // traversal that classifies and decodes) — charge those bytes
        // once, here, and nowhere else.
        std::size_t swept = 0;
        for (const io_status st : rec.statuses) {
            if (st == io_status::ok || st == io_status::checksum_mismatch) {
                ++swept;
            }
        }
        summary.scrub_bytes_single_pass += swept * strip;
    }
    for (const std::uint32_t col : rec.erased) {
        switch (rec.statuses[col]) {
            case io_status::transient_error:
                ++summary.transient_columns;
                break;
            case io_status::unreadable_sector:
                ++summary.latent_columns;
                break;
            default:
                break;
        }
    }
    summary.checksum_mismatch_columns +=
        rec.healed.size() + rec.meta_repaired.size();

    if (!rec.ok) {
        if (rec.erased.size() > 2) {
            // Beyond the decode budget. Distinguish "retry soon" from
            // real degradation, as the seed scrubber did.
            bool all_transient = !rec.erased.empty();
            for (const std::uint32_t col : rec.erased) {
                if (rec.statuses[col] != io_status::transient_error) {
                    all_transient = false;
                }
            }
            if (all_transient) {
                ++summary.skipped_transient;
            } else {
                ++summary.skipped_degraded;
            }
        } else {
            // Classification ran and could not produce a verified
            // stripe: more corrupt columns than erasure decoding can
            // carry, with parity refusing to corroborate the bytes.
            ++summary.uncorrectable;
        }
        return;
    }

    summary.repaired_metadata += rec.meta_repaired.size();
    for (const std::uint32_t col : rec.healed) {
        if (col < k) {
            ++summary.repaired_data;
        } else {
            ++summary.repaired_parity;
        }
    }
    if (!rec.erased.empty()) {
        // Degraded stripe scrubbed anyway — the checksum layer
        // pinpoints corruption without needing every column, which the
        // parity cross-check never could.
        ++summary.degraded_scrubbed;
        summary.repaired_on_degraded += rec.healed.size();
        return;
    }
    if (rec.healed.empty() && rec.meta_repaired.empty()) {
        // Checksums call the stripe clean. Cross-check parity anyway
        // (Section 5): this is the fallback that catches damage the
        // checksum domain cannot see, e.g. corruption that struck data
        // and its stored checksum consistently. Its bytes are charged to
        // the cross-check bucket, not the scrub-throughput figure.
        summary.scrub_bytes_crosscheck +=
            static_cast<std::size_t>(array.map().n()) * strip;
        const core::scrub_report report =
            core::scrub_stripe(v, array.code().geom());
        switch (report.status) {
            case core::scrub_status::clean:
                ++summary.clean;
                break;
            case core::scrub_status::corrected_data: {
                ++summary.repaired_data;
                ++summary.parity_fallback_repairs;
                const std::uint32_t cols[] = {report.column};
                array.store_columns(s, v, cols);
                break;
            }
            case core::scrub_status::corrected_p: {
                ++summary.repaired_parity;
                ++summary.parity_fallback_repairs;
                const std::uint32_t cols[] = {array.code().p_column()};
                array.store_columns(s, v, cols);
                break;
            }
            case core::scrub_status::corrected_q: {
                ++summary.repaired_parity;
                ++summary.parity_fallback_repairs;
                const std::uint32_t cols[] = {array.code().q_column()};
                array.store_columns(s, v, cols);
                break;
            }
            case core::scrub_status::uncorrectable:
                ++summary.uncorrectable;
                break;
        }
    }
}

}  // namespace

scrub_summary scrub_array(raid6_array& array) {
    scrub_summary summary;
    const std::size_t stripes = array.map().stripes();

    // One pass-level trace span plus a per-stripe latency histogram. The
    // histogram reference is resolved once per pass (registry lookups
    // take a mutex; the stripe loop must not). In the pipelined loop the
    // per-stripe sample covers verification and repair only — the loads
    // were prefetched a window ahead and show up in the aio_* stage
    // histograms instead.
    obs::hub& hub = array.obs();
    obs::latency_histogram& stripe_hist =
        hub.metrics().get_histogram("raid_scrub_stripe_ns");
    obs::counter& bytes_single_pass = hub.metrics().get_counter(
        "raid_scrub_bytes_single_pass_total",
        "stripe bytes scrubbed by the fused single-pass CRC sweep (each "
        "scanned byte counted once)");
    obs::counter& bytes_crosscheck = hub.metrics().get_counter(
        "raid_scrub_bytes_crosscheck_total",
        "extra bytes traversed by the parity cross-check fallback");
    obs::timed_span pass_span(hub, nullptr, "raid.scrub_pass", "scrub");

    if (array.io_queue_depth() > 1) {
        // Pipelined scrub: the loader fetches a whole window of stripes
        // ahead of verification, one merged transfer per disk, while the
        // accounting below consumes them in stripe order. Torn stripes
        // are skipped exactly as in the synchronous loop.
        aio::stripe_loader loader(array.aio_engine(), array.map());
        loader.run(
            0, stripes,
            /*skip_stripe=*/
            [&](std::size_t s) { return array.journal().is_dirty(s); },
            /*skip_column=*/nullptr,
            /*on_skipped=*/
            [&](std::size_t) {
                ++summary.stripes_scanned;
                ++summary.skipped_torn;
            },
            /*process=*/
            [&](std::size_t s, const codes::stripe_view& v,
                std::vector<io_status>& statuses) {
                ++summary.stripes_scanned;
                obs::timed_span span(hub, &stripe_hist, "scrub.stripe",
                                     "scrub");
                const raid6_array::stripe_recovery rec =
                    array.verify_loaded_stripe(s, v, /*writeback=*/true, {},
                                               /*trust_parity=*/true,
                                               std::move(statuses));
                account_stripe(array, summary, s, v, rec);
            });
        bytes_single_pass.inc(summary.scrub_bytes_single_pass);
        bytes_crosscheck.inc(summary.scrub_bytes_crosscheck);
        return summary;
    }

    codes::stripe_buffer buf = array.make_stripe_buffer();
    for (std::size_t s = 0; s < stripes; ++s) {
        ++summary.stripes_scanned;
        if (array.journal().is_dirty(s)) {
            ++summary.skipped_torn;
            continue;
        }
        obs::timed_span span(hub, &stripe_hist, "scrub.stripe", "scrub");
        const raid6_array::stripe_recovery rec =
            array.load_stripe_verified(s, buf.view(), /*writeback=*/true);
        account_stripe(array, summary, s, buf.view(), rec);
    }
    bytes_single_pass.inc(summary.scrub_bytes_single_pass);
    bytes_crosscheck.inc(summary.scrub_bytes_crosscheck);
    return summary;
}

}  // namespace liberation::raid
