#include "liberation/raid/scrubber.hpp"

#include <vector>

#include "liberation/core/error_correction.hpp"

namespace liberation::raid {

scrub_summary scrub_array(raid6_array& array) {
    scrub_summary summary;
    codes::stripe_buffer buf = array.make_stripe_buffer();
    std::vector<std::uint32_t> erased;
    std::vector<io_status> statuses;

    for (std::size_t s = 0; s < array.map().stripes(); ++s) {
        ++summary.stripes_scanned;
        if (!array.load_stripe(s, buf.view(), erased, &statuses) ||
            !erased.empty()) {
            bool all_transient = true;
            for (const std::uint32_t col : erased) {
                switch (statuses[col]) {
                    case io_status::transient_error:
                        ++summary.transient_columns;
                        break;
                    case io_status::unreadable_sector:
                        ++summary.latent_columns;
                        all_transient = false;
                        break;
                    default:
                        all_transient = false;
                        break;
                }
            }
            if (all_transient && !erased.empty()) {
                ++summary.skipped_transient;
            } else {
                ++summary.skipped_degraded;
            }
            continue;
        }
        const core::scrub_report report =
            core::scrub_stripe(buf.view(), array.code().geom());
        switch (report.status) {
            case core::scrub_status::clean:
                ++summary.clean;
                break;
            case core::scrub_status::corrected_data: {
                ++summary.repaired_data;
                const std::uint32_t cols[] = {report.column};
                array.store_columns(s, buf.view(), cols);
                break;
            }
            case core::scrub_status::corrected_p: {
                ++summary.repaired_parity;
                const std::uint32_t cols[] = {array.code().p_column()};
                array.store_columns(s, buf.view(), cols);
                break;
            }
            case core::scrub_status::corrected_q: {
                ++summary.repaired_parity;
                const std::uint32_t cols[] = {array.code().q_column()};
                array.store_columns(s, buf.view(), cols);
                break;
            }
            case core::scrub_status::uncorrectable:
                ++summary.uncorrectable;
                break;
        }
    }
    return summary;
}

}  // namespace liberation::raid
