#include "liberation/raid/persist/mount.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <random>
#include <tuple>

#include "liberation/obs/flight_recorder.hpp"
#include "liberation/obs/postmortem.hpp"
#include "liberation/util/assert.hpp"

namespace liberation::raid::persist {

namespace {

/// Human-readable census of what mount found, for postmortem bundles.
std::string mount_census_text(const mount_report& rep) {
    std::string s = "mount ok=" + std::to_string(rep.ok ? 1 : 0) + '\n';
    if (!rep.error.empty()) s += "error: " + rep.error + '\n';
    s += "disks_total=" + std::to_string(rep.disks_total) + '\n';
    s += "disks_online=" + std::to_string(rep.disks_online) + '\n';
    s += "torn_superblock_slots=" + std::to_string(rep.torn_superblock_slots) +
         '\n';
    s += "stale_kicked=" + std::to_string(rep.stale_kicked) + '\n';
    s += "foreign=" + std::to_string(rep.foreign) + '\n';
    s += "unreadable=" + std::to_string(rep.unreadable) + '\n';
    s += "unclean=" + std::to_string(rep.unclean ? 1 : 0) + '\n';
    s += "intent_entries=" + std::to_string(rep.intent_entries) + '\n';
    s += "intent_replayed=" + std::to_string(rep.intent_replayed) + '\n';
    s += "rebuilds_resumed=" + std::to_string(rep.rebuilds_resumed) + '\n';
    return s;
}

/// A refused mount is exactly the moment an operator needs breadcrumbs:
/// flight-record the refusal and trip an automatic bundle (census only —
/// there is no array, hence no hub, to scrape metrics from).
void note_mount_refused(const mount_report& rep) {
    obs::flight_recorder::instance().record(obs::fr_kind::mount_refused, 0,
                                            rep.disks_total, rep.stale_kicked);
    obs::postmortem_bundle b;
    b.census_text = mount_census_text(rep);
    (void)obs::auto_postmortem("mount_refused", nullptr, std::move(b));
}

}  // namespace

/// Friend of raid6_array: the only party allowed to install a store and
/// pose the array's private state while reassembling.
struct mounter {
    static std::unique_ptr<raid6_array> create(const array_config& cfg,
                                               const store_config& scfg,
                                               std::uint64_t uuid);
    static mounted_array mount(const mount_options& opts);
};

std::unique_ptr<raid6_array> mounter::create(const array_config& cfg,
                                             const store_config& scfg,
                                             std::uint64_t uuid) {
    array_config acfg = cfg;
    // The serialized intent area needs a fixed worst case; "unbounded"
    // becomes a bounded default (mark() still fails loudly when full).
    if (acfg.intent_log_entries == 0) acfg.intent_log_entries = 64;
    auto a = std::make_unique<raid6_array>(acfg);

    if (uuid == 0) {
        std::random_device rd;
        uuid = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
        if (uuid == 0) uuid = 1;
    }
    const std::uint32_t n = a->map_.n();
    std::vector<superblock> images(n);
    for (std::uint32_t s = 0; s < n; ++s) {
        superblock& img = images[s];
        img.array_uuid = uuid;
        img.events = 1;
        img.clean = false;
        img.slot = s;
        img.disk_id = a->disks_[s]->id();
        img.k = a->map_.k();
        img.p = a->code_.p();
        img.element_size = a->map_.element_size();
        img.stripes = a->map_.stripes();
        img.sector_size = a->sector_size_;
        img.layout = static_cast<std::uint32_t>(a->map_.layout());
        img.spares_available = static_cast<std::uint32_t>(a->spares_.size());
        img.next_disk_id = a->next_disk_id_;
        img.intent_capacity =
            static_cast<std::uint32_t>(acfg.intent_log_entries);
        img.slot_states.assign(
            n, static_cast<std::uint8_t>(slot_state::active));
        img.watermarks.assign(n, a->map_.stripes());
        const std::span<const std::uint32_t> crcs =
            a->regions_[s].checksums();
        img.crcs.assign(crcs.begin(), crcs.end());
    }
    std::unique_ptr<store> st =
        store::format(scfg, std::move(images), a->map_.disk_capacity());
    if (!st) return nullptr;
    a->attach_persistence(std::move(st));
    return a;
}

mounted_array mounter::mount(const mount_options& opts) {
    const auto t0 = std::chrono::steady_clock::now();
    mounted_array out;
    mount_report& rep = out.report;

    std::vector<disk_probe> probes = probe_dir(opts.store.dir);

    // ---- elect the authority superblock -------------------------------
    std::map<std::uint64_t, std::uint32_t> votes;
    for (const disk_probe& p : probes) {
        if (p.sb) ++votes[p.sb->array_uuid];
    }
    if (votes.empty()) {
        rep.error = "no decodable superblock in " + opts.store.dir;
        note_mount_refused(rep);
        return out;
    }
    std::uint64_t uuid = 0;
    std::uint32_t best_votes = 0;
    for (const auto& [u, c] : votes) {
        if (c > best_votes) {
            best_votes = c;
            uuid = u;
        }
    }
    const superblock* auth = nullptr;
    std::size_t auth_idx = 0;
    for (std::size_t i = 0; i < probes.size(); ++i) {
        const auto& sb = probes[i].sb;
        if (!sb || sb->array_uuid != uuid) continue;
        if (auth == nullptr || std::tie(sb->events, sb->seq) >
                                   std::tie(auth->events, auth->seq)) {
            auth = &*sb;
            auth_idx = i;
        }
    }
    LIBERATION_EXPECTS(auth != nullptr);  // votes was non-empty
    const auto n = static_cast<std::uint32_t>(auth->slot_states.size());
    if (n == 0 || n > 64 || auth->k + 2 != n || auth->intent_capacity == 0 ||
        auth->watermarks.size() != n) {
        rep.error = "authority superblock has corrupt geometry tables";
        note_mount_refused(rep);
        return out;
    }
    rep.disks_total = n;
    rep.unclean = !auth->clean;

    // ---- construct the array with the persisted geometry ---------------
    array_config acfg;
    acfg.k = auth->k;
    acfg.p = auth->p;
    acfg.element_size = auth->element_size;
    acfg.stripes = auth->stripes;
    acfg.sector_size = auth->sector_size;
    acfg.layout = static_cast<parity_layout>(auth->layout);
    acfg.hot_spares = auth->spares_available;
    acfg.auto_failover = opts.auto_failover;
    acfg.rebuild_batch_stripes = opts.rebuild_batch_stripes;
    acfg.io_retry = opts.io_retry;
    acfg.health = opts.health;
    acfg.latency = opts.latency;
    acfg.verify_reads = opts.verify_reads;
    acfg.intent_log_entries = auth->intent_capacity;
    acfg.io_queue_depth = opts.io_queue_depth;
    acfg.io_merge = opts.io_merge;
    acfg.io_workers = opts.io_workers;
    acfg.obs_virtual_time = opts.obs_virtual_time;
    auto a = std::make_unique<raid6_array>(acfg);

    // ---- classify every slot -------------------------------------------
    enum class disposition : std::uint8_t {
        active,      ///< current member, contents trusted
        resuming,    ///< current member, rebuild resumes at its watermark
        kicked,      ///< demoted to a blank rebuild target from stripe 0
        failed,      ///< dead per the authority (no file is overwritten)
        foreign_disk ///< someone else's file: failed AND metadata-excluded
    };
    std::vector<disposition> dispo(n, disposition::active);
    std::vector<std::uint32_t> fresh_slots;
    std::vector<superblock> images(n);
    std::uint32_t failed_total = 0;
    std::uint32_t kicked_total = 0;

    for (std::uint32_t s = 0; s < n; ++s) {
        const disk_probe* p = s < probes.size() ? &probes[s] : nullptr;
        if (p != nullptr) {
            rep.torn_superblock_slots +=
                static_cast<std::uint32_t>(p->bad_slots);
        }
        // Every image starts from the authority's replicated tables; the
        // slot's private fields are filled in per disposition below.
        superblock img = *auth;
        img.slot = s;
        img.seq = 0;
        img.clean = false;
        const std::span<const std::uint32_t> fresh_crcs =
            a->regions_[s].checksums();
        img.crcs.assign(fresh_crcs.begin(), fresh_crcs.end());

        const bool file_usable =
            p != nullptr && p->file_present && p->header_ok && p->sb &&
            p->sb->array_uuid == uuid && p->sb->geometry_matches(*auth) &&
            p->sb->crcs.size() == fresh_crcs.size();
        const bool foreign_file =
            p != nullptr && p->file_present &&
            ((p->header_ok && p->header.array_uuid != uuid) ||
             (p->sb && (p->sb->array_uuid != uuid ||
                        !p->sb->geometry_matches(*auth))));

        if (foreign_file) {
            // Another array's disk found in this slot: never write to it.
            dispo[s] = disposition::foreign_disk;
            ++rep.foreign;
            ++failed_total;
        } else if (static_cast<slot_state>(auth->slot_states[s] &
                                           ~slot_state_slow_bit) ==
                   slot_state::failed) {
            // Dead per the last membership epoch; whatever the file holds
            // is stale. Keep the slot failed until the operator replaces
            // it — resurrecting it as a rebuild target would be a silent
            // auto-replace the authority never sanctioned.
            dispo[s] = disposition::failed;
            ++failed_total;
            if (!file_usable) fresh_slots.push_back(s);
        } else if (!file_usable) {
            // Missing file, unreadable header, or both shadow slots torn:
            // re-initialize blank and rebuild the member from parity.
            dispo[s] = disposition::kicked;
            fresh_slots.push_back(s);
            ++rep.unreadable;
            ++kicked_total;
        } else if (p->sb->events + 1 < auth->events) {
            // More than one epoch behind: an old copy of the disk was
            // restored; its data cannot be trusted. Kick it to a rebuild
            // target (the file's framing is fine, only data is rebuilt).
            dispo[s] = disposition::kicked;
            img.seq = p->sb->seq;
            img.crcs = p->sb->crcs;  // describes the (stale) bytes on disk
            ++rep.stale_kicked;
            ++kicked_total;
        } else {
            img.seq = p->sb->seq;
            img.disk_id = p->sb->disk_id;
            img.crcs = p->sb->crcs;
            if (static_cast<slot_state>(auth->slot_states[s] &
                                        ~slot_state_slow_bit) ==
                    slot_state::rebuilding &&
                auth->watermarks[s] < auth->stripes) {
                dispo[s] = disposition::resuming;
                ++rep.rebuilds_resumed;
            }
        }
        images[s] = std::move(img);
    }
    // A kicked member is a blank rebuild target — an erasure until its
    // rebuild completes — so it counts against the same two-erasure
    // budget. Refusing here is the loud alternative to assembling an
    // array whose data can never be reconstructed.
    if (failed_total + kicked_total > 2) {
        rep.error = "more than two members failed, foreign, or untrusted — "
                    "beyond RAID-6, refusing to assemble";
        note_mount_refused(rep);
        return out;
    }

    // ---- open the store and load the surviving data --------------------
    std::unique_ptr<store> st =
        store::attach(opts.store, std::move(images), a->map_.disk_capacity(),
                      probes[auth_idx].header.slot_bytes, fresh_slots);
    if (!st) {
        rep.error = "could not initialize backing files";
        note_mount_refused(rep);
        return out;
    }
    for (std::uint32_t s = 0; s < n; ++s) {
        if (dispo[s] == disposition::foreign_disk) st->exclude_meta_slot(s);
    }
    std::vector<std::byte> disk_image(a->map_.disk_capacity());
    for (std::uint32_t s = 0; s < n; ++s) {
        // Loadable contents: current members, and stale-kicked disks
        // whose checksums describe the bytes still in the file. Fresh or
        // foreign slots stay at the blank medium the constructor made.
        const bool load =
            dispo[s] == disposition::active ||
            dispo[s] == disposition::resuming ||
            (dispo[s] == disposition::kicked &&
             std::find(fresh_slots.begin(), fresh_slots.end(), s) ==
                 fresh_slots.end());
        if (!load) continue;
        if (st->read_data(s, 0, disk_image)) {
            a->disks_[s]->poke(0, disk_image);
        }
        a->regions_[s].restore_checksums(st->image(s).crcs);
    }

    // ---- wire membership, watermarks, and the journal ------------------
    for (std::uint32_t s = 0; s < n; ++s) {
        switch (dispo[s]) {
        case disposition::failed:
        case disposition::foreign_disk:
            a->disks_[s]->fail();
            break;
        case disposition::kicked:
            a->rebuilding_.push_back({s, 0});
            a->stats_.stale_disks_kicked.fetch_add(
                1, std::memory_order_relaxed);
            break;
        case disposition::resuming:
            a->rebuilding_.push_back(
                {s, static_cast<std::size_t>(auth->watermarks[s])});
            break;
        case disposition::active:
            break;
        }
        // Re-enter a persisted fail-slow quarantine (active/resuming
        // members only — fresh hardware in a kicked slot starts normal).
        // Must happen before persist_membership() below, which recomputes
        // the slot-state bytes from the live monitor.
        if ((dispo[s] == disposition::active ||
             dispo[s] == disposition::resuming) &&
            (auth->slot_states[s] & slot_state_slow_bit) != 0 &&
            a->latmon_.enabled()) {
            a->latmon_.force_quarantine(s);
        }
    }
    a->rebuild_active_ = !a->rebuilding_.empty();
    a->next_disk_id_ = std::max(a->next_disk_id_, auth->next_disk_id);
    for (const superblock::intent_entry& e : auth->intents) {
        a->journal_.restore(static_cast<std::size_t>(e.stripe), e.columns,
                            e.seq);
    }
    rep.intent_entries = auth->intents.size();
    a->gauge_journal_->set(static_cast<std::int64_t>(a->journal_.size()));
    a->attach_persistence(std::move(st));
    a->update_health_gauges();

    // New epoch, stamped unclean: members that miss it (failed slots) are
    // stale at the next mount, and a crash from here on replays again.
    a->persist_membership();
    a->persist_intent();

    // ---- replay the write-hole intent log ------------------------------
    if (opts.replay_intent && a->journal_.size() > 0) {
        std::size_t total = 0;
        for (int round = 0; round < 16 && a->journal_.size() > 0; ++round) {
            const std::size_t done = a->recover_write_hole();
            total += done;
            if (done == 0) break;  // the rest needs a rebuild first
        }
        rep.intent_replayed = total;
        a->stats_.intent_replayed.fetch_add(total, std::memory_order_relaxed);
        if (total > 0) {
            obs::flight_recorder::instance().record(
                obs::fr_kind::intent_replayed, a->obs_.now_ns(), 0, total);
        }
    }

    rep.disks_online = n - failed_total;
    rep.ok = true;
    obs::flight_recorder::instance().record(obs::fr_kind::mount_ok,
                                            a->obs_.now_ns(), rep.disks_online,
                                            rep.intent_replayed);
    const auto dt = std::chrono::steady_clock::now() - t0;
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count();
    rep.mount_s = static_cast<double>(ns) * 1e-9;
    a->obs_.metrics()
        .get_histogram("raid_mount_ns",
                       "persistent-array mount latency "
                       "(probe, image load, intent replay)")
        .record(static_cast<std::uint64_t>(ns));
    out.array = std::move(a);
    return out;
}

std::unique_ptr<raid6_array> create_array(const array_config& cfg,
                                          const store_config& scfg,
                                          std::uint64_t uuid) {
    return mounter::create(cfg, scfg, uuid);
}

mounted_array mount_array(const mount_options& opts) {
    return mounter::mount(opts);
}

}  // namespace liberation::raid::persist
