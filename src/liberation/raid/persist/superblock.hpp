// On-disk superblock of a persistent RAID-6 array (format v1).
//
// Every member disk's backing file carries, ahead of its data area:
//
//   [ file header, 4 KiB ][ superblock slot A ][ superblock slot B ][ data ]
//
// The *file header* is written exactly once, at format time, and never
// rewritten — it cannot tear — and records only what is needed to find
// and frame the superblock slots (slot size, data offset, array UUID,
// this file's slot index), CRC-protected like everything else.
//
// The *superblock* is the whole metadata state of the array as this disk
// last saw it: geometry, membership epoch (`events`, md's event counter),
// per-slot states and rebuild watermarks, the write-hole intent log, the
// hot-spare pool level — all replicated to every member so any surviving
// quorum can reassemble the array — plus this disk's own identity and its
// private integrity-checksum table (each disk checksums only itself; a
// member's CRC table dies with it and is rebuilt along with its data).
//
// Crash consistency is shadow-slot A/B: every update bumps the monotonic
// `seq` and rewrites the *alternate* slot, so a torn superblock write
// destroys at most the newer copy and the previous state remains intact
// and CRC-valid. decode() rejects a torn slot by its trailing CRC32C;
// mount takes the valid slot with the larger seq. The fsync ordering that
// upgrades this from process-kill safety to machine-crash safety is the
// store's job (see store.hpp and docs/PERSISTENCE.md).
//
// All integers are serialized little-endian, explicitly, so an image
// written on one host decodes on any other.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace liberation::raid::persist {

/// Membership state of one disk slot, as persisted.
enum class slot_state : std::uint8_t {
    active = 0,      ///< full member, contents trusted
    failed = 1,      ///< fail-stopped or foreign; contents not used
    rebuilding = 2,  ///< promoted/blank member; trusted below its watermark
};

/// Flag bit OR-ed into a persisted slot-state byte when the member is
/// quarantined as fail-slow (latency_monitor's suspect_slow): its bytes
/// are fully trusted — lateness is not corruption — so the base state
/// stays `active`, and mount re-enters the quarantine instead of
/// re-learning the straggler from scratch. A separate bit (not a new
/// enum value) keeps the framing and version unchanged; decoders mask
/// it off before interpreting the base state.
inline constexpr std::uint8_t slot_state_slow_bit = 0x40;

inline constexpr std::uint64_t superblock_magic = 0x3130'4253'5242'494cULL;
inline constexpr std::uint32_t superblock_version = 1;
inline constexpr std::uint64_t file_header_magic = 0x3152'4448'5242'494cULL;
inline constexpr std::size_t file_header_size = 4096;

/// The write-once framing block at offset 0 of every member file.
struct file_header {
    std::uint64_t array_uuid = 0;
    std::uint32_t slot = 0;        ///< this file's slot index
    std::uint64_t slot_bytes = 0;  ///< size of each superblock slot
    std::uint64_t data_offset = 0; ///< file offset of the data area
};

/// In-memory image of one disk's superblock.
struct superblock {
    // ---- identity & epoch --------------------------------------------
    std::uint64_t seq = 0;         ///< bumped on every persist of this disk
    std::uint64_t array_uuid = 0;
    std::uint64_t events = 0;      ///< membership epoch (mount, fail, promote)
    bool clean = false;            ///< true only after a clean unmount
    std::uint32_t slot = 0;        ///< slot this superblock belongs to
    std::uint32_t disk_id = 0;     ///< identity of the hardware in the slot

    // ---- geometry ----------------------------------------------------
    std::uint32_t k = 0;
    std::uint32_t p = 0;           ///< code prime (= rows per strip)
    std::uint64_t element_size = 0;
    std::uint64_t stripes = 0;
    std::uint64_t sector_size = 0;
    std::uint32_t layout = 0;      ///< parity_layout as integer

    // ---- replicated array-wide state ---------------------------------
    std::uint32_t spares_available = 0;
    std::uint32_t next_disk_id = 0;
    std::uint32_t intent_capacity = 0;  ///< serialized intent-entry slots
    std::vector<std::uint8_t> slot_states;  ///< slot_state per disk slot
    std::vector<std::uint64_t> watermarks;  ///< rebuild cursor per slot
    struct intent_entry {
        std::uint64_t stripe;
        std::uint64_t columns;
        std::uint64_t seq;
    };
    std::vector<intent_entry> intents;

    // ---- this disk's private state -----------------------------------
    std::vector<std::uint32_t> crcs;  ///< integrity_region checksum table

    /// Same coded geometry? (The membership/identity fields may differ.)
    [[nodiscard]] bool geometry_matches(const superblock& o) const noexcept {
        return k == o.k && p == o.p && element_size == o.element_size &&
               stripes == o.stripes && sector_size == o.sector_size &&
               layout == o.layout &&
               slot_states.size() == o.slot_states.size();
    }
};

/// Exact encoded size for the given table dimensions (used to fix the
/// slot size at format time; intents always serialize `intent_capacity`
/// slots so the size never varies with log occupancy).
[[nodiscard]] std::size_t encoded_size(std::uint32_t slots,
                                       std::uint32_t intent_capacity,
                                       std::size_t crc_count) noexcept;

/// Serialize; the result is CRC32C-terminated and decode()-compatible.
/// sb.intents.size() must be <= sb.intent_capacity.
[[nodiscard]] std::vector<std::byte> encode(const superblock& sb);

/// Parse and validate (magic, version, structural bounds, trailing CRC).
/// nullopt = not a valid v1 superblock — a torn write, zeroed slot, or
/// something else entirely; the caller falls back to the shadow slot.
[[nodiscard]] std::optional<superblock> decode(std::span<const std::byte> raw);

[[nodiscard]] std::vector<std::byte> encode_header(const file_header& h);
[[nodiscard]] std::optional<file_header> decode_header(
    std::span<const std::byte> raw);

}  // namespace liberation::raid::persist
