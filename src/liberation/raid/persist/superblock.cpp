#include "liberation/raid/persist/superblock.hpp"

#include "liberation/integrity/crc32c.hpp"
#include "liberation/util/assert.hpp"

namespace liberation::raid::persist {

namespace {

// Explicit little-endian (de)serialization: byte-order independent and
// free of alignment assumptions, so an image travels between hosts.

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
    out.push_back(static_cast<std::byte>(v));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
}

/// Bounds-checked sequential reader; any overrun poisons the parse.
struct reader {
    std::span<const std::byte> raw;
    std::size_t pos = 0;
    bool ok = true;

    std::uint8_t u8() {
        if (pos + 1 > raw.size()) { ok = false; return 0; }
        return static_cast<std::uint8_t>(raw[pos++]);
    }
    std::uint32_t u32() {
        if (pos + 4 > raw.size()) { ok = false; return 0; }
        std::uint32_t v = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(raw[pos + i]) << (8 * i);
        }
        pos += 4;
        return v;
    }
    std::uint64_t u64() {
        if (pos + 8 > raw.size()) { ok = false; return 0; }
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(raw[pos + i]) << (8 * i);
        }
        pos += 8;
        return v;
    }
};

constexpr std::size_t fixed_fields_size =
    8 + 4 + 4 +          // magic, version, flags
    8 + 8 + 8 +          // seq, array_uuid, events
    4 + 4 +              // slot, disk_id
    4 + 4 + 8 + 8 + 8 + 4 +  // k, p, element_size, stripes, sector, layout
    4 + 4 + 4 +          // spares_available, next_disk_id, intent_capacity
    4 + 4 + 4;           // slot_count, intent_count, crc_count

constexpr std::uint32_t flag_clean = 1u << 0;

// Sanity ceilings: large enough for any real configuration, small enough
// that a CRC-colliding garbage blob cannot drive pathological allocation.
constexpr std::uint32_t max_slots = 64;
constexpr std::uint32_t max_intent_capacity = 1u << 20;
constexpr std::size_t max_crc_count = std::size_t{1} << 32;

}  // namespace

std::size_t encoded_size(std::uint32_t slots, std::uint32_t intent_capacity,
                         std::size_t crc_count) noexcept {
    return fixed_fields_size +
           std::size_t{slots} * (1 + 8) +       // slot_states + watermarks
           std::size_t{intent_capacity} * 24 +  // stripe, columns, seq
           crc_count * 4 +                      // checksum table
           4;                                   // trailing CRC32C
}

std::vector<std::byte> encode(const superblock& sb) {
    LIBERATION_EXPECTS(sb.slot_states.size() == sb.watermarks.size());
    LIBERATION_EXPECTS(sb.intents.size() <= sb.intent_capacity);
    std::vector<std::byte> out;
    out.reserve(encoded_size(static_cast<std::uint32_t>(sb.slot_states.size()),
                             sb.intent_capacity, sb.crcs.size()));

    put_u64(out, superblock_magic);
    put_u32(out, superblock_version);
    put_u32(out, sb.clean ? flag_clean : 0);
    put_u64(out, sb.seq);
    put_u64(out, sb.array_uuid);
    put_u64(out, sb.events);
    put_u32(out, sb.slot);
    put_u32(out, sb.disk_id);
    put_u32(out, sb.k);
    put_u32(out, sb.p);
    put_u64(out, sb.element_size);
    put_u64(out, sb.stripes);
    put_u64(out, sb.sector_size);
    put_u32(out, sb.layout);
    put_u32(out, sb.spares_available);
    put_u32(out, sb.next_disk_id);
    put_u32(out, sb.intent_capacity);
    put_u32(out, static_cast<std::uint32_t>(sb.slot_states.size()));
    put_u32(out, static_cast<std::uint32_t>(sb.intents.size()));
    put_u32(out, static_cast<std::uint32_t>(sb.crcs.size()));

    for (std::uint8_t st : sb.slot_states) put_u8(out, st);
    for (std::uint64_t wm : sb.watermarks) put_u64(out, wm);
    for (const superblock::intent_entry& e : sb.intents) {
        put_u64(out, e.stripe);
        put_u64(out, e.columns);
        put_u64(out, e.seq);
    }
    // Pad the unused intent slots so the encoded size — and with it the
    // on-disk slot framing — never depends on log occupancy.
    for (std::size_t i = sb.intents.size(); i < sb.intent_capacity; ++i) {
        put_u64(out, 0);
        put_u64(out, 0);
        put_u64(out, 0);
    }
    for (std::uint32_t crc : sb.crcs) put_u32(out, crc);

    put_u32(out, integrity::crc32c(out.data(), out.size()));
    return out;
}

std::optional<superblock> decode(std::span<const std::byte> raw) {
    reader r{raw};
    if (r.u64() != superblock_magic) return std::nullopt;
    if (r.u32() != superblock_version) return std::nullopt;

    superblock sb;
    const std::uint32_t flags = r.u32();
    sb.clean = (flags & flag_clean) != 0;
    sb.seq = r.u64();
    sb.array_uuid = r.u64();
    sb.events = r.u64();
    sb.slot = r.u32();
    sb.disk_id = r.u32();
    sb.k = r.u32();
    sb.p = r.u32();
    sb.element_size = r.u64();
    sb.stripes = r.u64();
    sb.sector_size = r.u64();
    sb.layout = r.u32();
    sb.spares_available = r.u32();
    sb.next_disk_id = r.u32();
    sb.intent_capacity = r.u32();
    const std::uint32_t slots = r.u32();
    const std::uint32_t intent_count = r.u32();
    const std::uint32_t crc_count = r.u32();
    if (!r.ok) return std::nullopt;
    if (slots > max_slots || sb.intent_capacity > max_intent_capacity ||
        intent_count > sb.intent_capacity || crc_count > max_crc_count) {
        return std::nullopt;
    }
    const std::size_t want = encoded_size(slots, sb.intent_capacity, crc_count);
    if (raw.size() < want) return std::nullopt;

    // Validate the trailing CRC over exactly the encoded extent before
    // trusting any table contents (the slot buffer may be larger).
    const std::uint32_t stored = [&] {
        std::uint32_t v = 0;
        for (std::size_t i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(raw[want - 4 + i]) << (8 * i);
        }
        return v;
    }();
    if (integrity::crc32c(raw.data(), want - 4) != stored) return std::nullopt;

    sb.slot_states.resize(slots);
    for (std::uint32_t i = 0; i < slots; ++i) sb.slot_states[i] = r.u8();
    sb.watermarks.resize(slots);
    for (std::uint32_t i = 0; i < slots; ++i) sb.watermarks[i] = r.u64();
    sb.intents.resize(intent_count);
    for (std::uint32_t i = 0; i < intent_count; ++i) {
        sb.intents[i].stripe = r.u64();
        sb.intents[i].columns = r.u64();
        sb.intents[i].seq = r.u64();
    }
    r.pos += (sb.intent_capacity - intent_count) * 24;  // skip padding slots
    sb.crcs.resize(crc_count);
    for (std::uint32_t i = 0; i < crc_count; ++i) sb.crcs[i] = r.u32();
    if (!r.ok) return std::nullopt;

    for (std::uint8_t st : sb.slot_states) {
        if ((st & ~slot_state_slow_bit) >
            static_cast<std::uint8_t>(slot_state::rebuilding)) {
            return std::nullopt;
        }
    }
    return sb;
}

std::vector<std::byte> encode_header(const file_header& h) {
    std::vector<std::byte> out;
    out.reserve(file_header_size);
    put_u64(out, file_header_magic);
    put_u32(out, superblock_version);
    put_u64(out, h.array_uuid);
    put_u32(out, h.slot);
    put_u64(out, h.slot_bytes);
    put_u64(out, h.data_offset);
    put_u32(out, integrity::crc32c(out.data(), out.size()));
    out.resize(file_header_size);  // zero-pad to the full header block
    return out;
}

std::optional<file_header> decode_header(std::span<const std::byte> raw) {
    reader r{raw};
    if (r.u64() != file_header_magic) return std::nullopt;
    if (r.u32() != superblock_version) return std::nullopt;
    file_header h;
    h.array_uuid = r.u64();
    h.slot = r.u32();
    h.slot_bytes = r.u64();
    h.data_offset = r.u64();
    const std::size_t payload = r.pos;
    const std::uint32_t stored = r.u32();
    if (!r.ok) return std::nullopt;
    if (integrity::crc32c(raw.data(), payload) != stored) return std::nullopt;
    if (h.slot_bytes == 0 ||
        h.data_offset < file_header_size + 2 * h.slot_bytes) {
        return std::nullopt;
    }
    return h;
}

}  // namespace liberation::raid::persist
