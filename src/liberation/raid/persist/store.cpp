#include "liberation/raid/persist/store.hpp"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "liberation/util/assert.hpp"

namespace liberation::raid::persist {

namespace {

constexpr std::size_t slot_align = 4096;
constexpr std::uint32_t probe_scan_limit = 64;  // matches the array's max n

std::uint64_t round_up(std::uint64_t v, std::uint64_t align) {
    return (v + align - 1) / align * align;
}

/// Read exactly out.size() bytes at `offset` with stdio; false on any
/// shortfall. Used only by probe_dir, which must not create files.
bool read_at(std::FILE* f, std::size_t offset, std::span<std::byte> out) {
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) return false;
    return std::fread(out.data(), 1, out.size(), f) == out.size();
}

}  // namespace

std::string store::disk_path(const std::string& dir, std::uint32_t slot) {
    char name[32];
    std::snprintf(name, sizeof(name), "/disk-%02u.img", slot);
    return dir + name;
}

std::vector<disk_probe> probe_dir(const std::string& dir) {
    std::vector<disk_probe> probes;
    std::size_t last_present = 0;
    for (std::uint32_t slot = 0; slot < probe_scan_limit; ++slot) {
        disk_probe p;
        p.path = store::disk_path(dir, slot);
        std::FILE* f = std::fopen(p.path.c_str(), "rb");
        if (f) {
            p.file_present = true;
            std::vector<std::byte> hdr(file_header_size);
            if (read_at(f, 0, hdr)) {
                if (auto h = decode_header(hdr)) {
                    p.header_ok = true;
                    p.header = *h;
                }
            }
            if (p.header_ok) {
                // Decode both shadow slots; keep the valid one with the
                // larger seq, count the rest as torn.
                std::vector<std::byte> raw(p.header.slot_bytes);
                for (int s = 0; s < 2; ++s) {
                    const std::size_t off =
                        file_header_size +
                        static_cast<std::size_t>(s) * p.header.slot_bytes;
                    std::optional<superblock> sb;
                    if (read_at(f, off, raw)) sb = decode(raw);
                    if (!sb) {
                        ++p.bad_slots;
                    } else if (!p.sb || sb->seq > p.sb->seq) {
                        p.sb = std::move(sb);
                    }
                }
            }
            std::fclose(f);
            last_present = probes.size() + 1;
        }
        probes.push_back(std::move(p));
    }
    probes.resize(last_present);
    return probes;
}

store::store(store_config cfg, std::vector<superblock> images,
             std::uint64_t slot_bytes, std::size_t disk_capacity)
    : cfg_(std::move(cfg)), slot_bytes_(slot_bytes),
      uuid_(images.empty() ? 0 : images.front().array_uuid),
      images_(std::move(images)) {
    std::vector<std::string> paths;
    paths.reserve(images_.size());
    for (std::uint32_t s = 0; s < images_.size(); ++s) {
        paths.push_back(disk_path(cfg_.dir, s));
    }
    aio::file_backend_config bc;
    bc.data_offset = file_header_size + 2 * slot_bytes_;
    bc.direct_io = cfg_.direct_io;
    bc.sync_data = cfg_.sync_data;
    backend_ = std::make_unique<aio::file_backend>(std::move(paths),
                                                   disk_capacity, bc);
}

bool store::init_slot_file(std::uint32_t slot) {
    superblock& sb = images_[slot];
    file_header h;
    h.array_uuid = sb.array_uuid;
    h.slot = slot;
    h.slot_bytes = slot_bytes_;
    h.data_offset = file_header_size + 2 * slot_bytes_;
    if (!backend_->pwrite_raw(slot, 0, encode_header(h))) return false;
    // Prime both shadow slots so the first regular persist (which
    // overwrites one of them) always leaves a valid fallback copy.
    const std::vector<std::byte> blob = encode(sb);
    LIBERATION_EXPECTS(blob.size() <= slot_bytes_);
    if (!backend_->pwrite_raw(slot, file_header_size, blob)) return false;
    if (!backend_->pwrite_raw(slot, file_header_size + slot_bytes_, blob)) {
        return false;
    }
    if (cfg_.sync_meta && !backend_->flush(slot)) return false;
    return true;
}

std::unique_ptr<store> store::format(const store_config& cfg,
                                     std::vector<superblock> images,
                                     std::size_t disk_capacity) {
    LIBERATION_EXPECTS(!images.empty());
    // Formatting a fresh array may name a directory that does not exist
    // yet; creating it here keeps `create_array(dir)` one-shot. (attach()
    // deliberately does not: mounting expects the files to be there.)
    std::error_code ec;
    std::filesystem::create_directories(cfg.dir, ec);
    const superblock& first = images.front();
    const std::uint64_t slot_bytes = round_up(
        encoded_size(static_cast<std::uint32_t>(first.slot_states.size()),
                     first.intent_capacity, first.crcs.size()),
        slot_align);
    std::unique_ptr<store> st(
        new store(cfg, std::move(images), slot_bytes, disk_capacity));
    for (std::uint32_t s = 0; s < st->slot_count(); ++s) {
        if (!st->backend_->ok(s) || !st->init_slot_file(s)) return nullptr;
    }
    return st;
}

std::unique_ptr<store> store::attach(
    const store_config& cfg, std::vector<superblock> images,
    std::size_t disk_capacity, std::uint64_t slot_bytes,
    const std::vector<std::uint32_t>& fresh_slots) {
    LIBERATION_EXPECTS(!images.empty());
    std::unique_ptr<store> st(
        new store(cfg, std::move(images), slot_bytes, disk_capacity));
    for (std::uint32_t s : fresh_slots) {
        if (!st->backend_->ok(s) || !st->init_slot_file(s)) return nullptr;
    }
    return st;
}

bool store::reinit_slot(std::uint32_t slot) {
    if (!backend_->ok(slot) || !init_slot_file(slot)) return false;
    meta_mask_ |= std::uint64_t{1} << slot;
    return true;
}

bool store::persist(std::uint32_t slot) {
    if (!backend_->ok(slot)) return false;
    superblock& sb = images_[slot];
    ++sb.seq;
    const std::vector<std::byte> blob = encode(sb);
    LIBERATION_EXPECTS(blob.size() <= slot_bytes_);
    const std::size_t off =
        file_header_size + static_cast<std::size_t>(sb.seq % 2) * slot_bytes_;
    if (!backend_->pwrite_raw(slot, off, blob)) return false;
    if (cfg_.sync_meta && !backend_->flush(slot)) return false;
    return true;
}

bool store::read_data(std::uint32_t slot, std::size_t offset,
                      std::span<std::byte> out) {
    return backend_->read_data(slot, offset, out);
}

bool store::write_data(std::uint32_t slot, std::size_t offset,
                       std::span<const std::byte> in) {
    return backend_->write_data(slot, offset, in);
}

bool store::flush_all() { return backend_->flush_all(); }

}  // namespace liberation::raid::persist
