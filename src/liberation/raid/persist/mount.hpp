// Mount / create entry points for persistent RAID-6 arrays.
//
// create_array() formats a fresh store (one backing file per disk, file
// header + A/B superblock slots + data area) and returns a live array
// wired to it. mount_array() reassembles an array from whatever the
// directory holds, md-style:
//
//   1. *Probe* every disk file read-only: decode the write-once header
//      and both superblock shadow slots (a torn slot fails its CRC and
//      the other slot is used).
//   2. *Elect an authority*: among the decodable superblocks, the
//      majority array-UUID wins, and within it the copy with the highest
//      (events, seq) — the member that saw the most recent membership
//      epoch. Its replicated tables (geometry, slot states, rebuild
//      watermarks, intent log, spare level) describe the array.
//   3. *Classify each slot* and degrade gracefully instead of refusing
//      to assemble:
//        - foreign UUID or mismatched geometry -> the slot is failed and
//          its file is left alone (it belongs to some other array);
//        - missing file, unreadable header, or both superblock slots
//          torn -> the disk is re-initialized blank and *kicked* to a
//          rebuild target (stale_disks_kicked);
//        - events more than one epoch behind the authority -> the data
//          cannot be trusted (an old copy was restored); kicked likewise;
//        - otherwise the member is current: its data area is loaded and
//          its private checksum table restored.
//      More than two failed (non-rebuildable) slots fails the mount
//      loudly — that is data loss, not a degraded mode.
//   4. *Resume*: rebuilding members continue from their persisted
//      watermarks; the persisted intent log is restored and replayed
//      (each journaled stripe re-synced, oldest hazard first) before the
//      array is handed to the caller.
//
// Both paths return arrays whose every subsequent mutation flows back
// into the store (media sinks + superblock persists); raid6_array::
// unmount() stamps the images clean. See docs/PERSISTENCE.md.
#pragma once

#include <memory>
#include <string>

#include "liberation/raid/array.hpp"
#include "liberation/raid/persist/store.hpp"

namespace liberation::raid::persist {

/// Runtime knobs for mounting. Geometry, spare level, and intent-log
/// capacity come from the superblocks; everything here is per-process
/// policy that is deliberately *not* persisted.
struct mount_options {
    store_config store;
    std::size_t io_queue_depth = 8;
    bool io_merge = true;
    util::thread_pool* io_workers = nullptr;
    bool verify_reads = true;
    io_policy_config io_retry{};
    health_config health{};
    /// Fail-slow tolerance (hedged reads, quarantine). Thresholds are
    /// per-process policy; the quarantine *state* is persisted (slot-state
    /// slow bit) and re-entered at mount when this layer is enabled.
    latency_config latency{};
    std::size_t rebuild_batch_stripes = 4;
    bool auto_failover = true;
    bool obs_virtual_time = false;
    /// Replay the persisted intent log before returning (on by default;
    /// tests disable it to inspect the restored journal).
    bool replay_intent = true;
};

/// What mount found and did. `ok == false` leaves `array` null and
/// `error` set; everything else is informational.
struct mount_report {
    bool ok = false;
    std::string error;
    std::uint32_t disks_total = 0;
    std::uint32_t disks_online = 0;       ///< current members (incl. rebuilding)
    std::uint32_t torn_superblock_slots = 0;  ///< A/B copies failing their CRC
    std::uint32_t stale_kicked = 0;  ///< members demoted to blank rebuild targets
    std::uint32_t foreign = 0;       ///< files of another array (left alone)
    std::uint32_t unreadable = 0;    ///< missing/unreadable files re-initialized
    bool unclean = false;            ///< last shutdown was not unmount()
    std::size_t intent_entries = 0;  ///< journal entries restored
    std::size_t intent_replayed = 0; ///< journaled stripes re-synced now
    std::uint32_t rebuilds_resumed = 0;  ///< members resuming from a watermark
    double mount_s = 0.0;            ///< wall time, also in raid_mount_ns
};

struct mounted_array {
    std::unique_ptr<raid6_array> array;
    mount_report report;
};

/// Format a fresh persistent array in `scfg.dir`. A zero `uuid` draws a
/// random one. `cfg.intent_log_entries == 0` (unbounded) is forced to a
/// bounded default of 64 — the serialized intent area must have a fixed
/// worst-case size. Returns null if the backing files cannot be created.
[[nodiscard]] std::unique_ptr<raid6_array> create_array(
    const array_config& cfg, const store_config& scfg, std::uint64_t uuid = 0);

/// Reassemble the array persisted in `opts.store.dir` (see file header).
[[nodiscard]] mounted_array mount_array(const mount_options& opts);

}  // namespace liberation::raid::persist
