// Persistence store: the backing files of one RAID-6 array.
//
// A `store` owns one file per disk slot (`<dir>/disk-NN.img`), each framed
// as [file header][superblock slot A][superblock slot B][data area] (see
// superblock.hpp), and a `file_backend` that executes all I/O against
// them. The array keeps its authoritative state in memory exactly as
// before; the store holds one mutable superblock *image* per slot, and the
// array's persistence hooks edit the relevant images and call persist(),
// which bumps the image's seq, re-encodes it, and shadow-writes the
// alternate A/B slot.
//
// Fsync ordering (machine-crash durability, `store_config::sync_meta`):
// a superblock is fdatasync'd immediately after its slot write, so a
// record-ahead intent entry is durable before the data writes it covers
// are issued — the same ordering the in-memory array maintains against
// simulated power loss. With sync_meta off, writes still survive process
// kills (the kernel owns the page cache), which is what the chaos
// campaign's kill-and-remount phases exercise. See docs/PERSISTENCE.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "liberation/aio/file_backend.hpp"
#include "liberation/raid/persist/superblock.hpp"

namespace liberation::raid::persist {

struct store_config {
    std::string dir;          ///< directory holding disk-NN.img files
    bool direct_io = false;   ///< route aligned data I/O through O_DIRECT
    bool sync_meta = false;   ///< fdatasync each superblock persist
    bool sync_data = false;   ///< fdatasync each data write (paranoid mode)
};

/// What probe found in one slot's backing file, before any geometry is
/// known: header, both superblock slots, and how they decoded.
struct disk_probe {
    std::string path;
    bool file_present = false;
    bool header_ok = false;     ///< file header decoded and sane
    file_header header;
    int bad_slots = 0;          ///< A/B slots that failed to decode (0..2)
    std::optional<superblock> sb;  ///< the valid slot with the larger seq
};

/// Read-only scan of a store directory (plain stdio — never creates or
/// modifies anything). Returns one probe per slot index from 0 through
/// the highest index with a file present; trailing entries may be absent
/// placeholders when earlier files exist but later ones were lost.
[[nodiscard]] std::vector<disk_probe> probe_dir(const std::string& dir);

class store {
public:
    /// `<dir>/disk-NN.img` for slot NN.
    [[nodiscard]] static std::string disk_path(const std::string& dir,
                                               std::uint32_t slot);

    /// Create fresh backing files for every slot: write-once file header,
    /// then both superblock slots primed with the given image (so even the
    /// very first shadow write has a valid fallback). All images must
    /// share table dimensions — the common worst case fixes the slot size.
    /// Returns nullptr if any file cannot be created or written.
    static std::unique_ptr<store> format(const store_config& cfg,
                                         std::vector<superblock> images,
                                         std::size_t disk_capacity);

    /// Reopen existing files. `images` holds the per-slot in-memory state
    /// the mounter decided on (decoded, or fabricated for kicked disks);
    /// slots listed in `fresh_slots` get their header and both superblock
    /// slots rewritten from scratch (missing or unreadable files being
    /// re-initialized as blank rebuild targets). Returns nullptr when a
    /// fresh slot cannot be initialized.
    static std::unique_ptr<store> attach(
        const store_config& cfg, std::vector<superblock> images,
        std::size_t disk_capacity, std::uint64_t slot_bytes,
        const std::vector<std::uint32_t>& fresh_slots);

    [[nodiscard]] std::size_t slot_count() const noexcept {
        return images_.size();
    }
    [[nodiscard]] std::uint64_t uuid() const noexcept { return uuid_; }
    [[nodiscard]] std::uint64_t slot_bytes() const noexcept {
        return slot_bytes_;
    }
    [[nodiscard]] bool slot_ok(std::uint32_t slot) const noexcept {
        return backend_->ok(slot);
    }

    /// Slots participating in metadata replication (superblock persists
    /// and media sinks). The mounter excludes foreign or geometry-
    /// mismatched files so a stray disk from another array is never
    /// overwritten; reinit_slot() reclaims a slot once the operator
    /// installs a blank replacement.
    [[nodiscard]] bool meta_slot(std::uint32_t slot) const noexcept {
        return ((meta_mask_ >> slot) & 1) != 0;
    }
    void exclude_meta_slot(std::uint32_t slot) noexcept {
        meta_mask_ &= ~(std::uint64_t{1} << slot);
    }
    /// Reclaim a slot for this array: rewrite its file header and both
    /// superblock slots from the current image and re-enable metadata
    /// updates for it.
    bool reinit_slot(std::uint32_t slot);

    /// The mutable in-memory superblock image for a slot. The array's
    /// hooks edit images, then persist() the ones they touched.
    [[nodiscard]] superblock& image(std::uint32_t slot) {
        return images_[slot];
    }
    [[nodiscard]] const superblock& image(std::uint32_t slot) const {
        return images_[slot];
    }

    /// Bump the image's seq and shadow-write it to the alternate A/B slot
    /// (fdatasync'd when sync_meta). False when the slot's file is gone.
    bool persist(std::uint32_t slot);

    // ---- data plane (offsets relative to the data area) ----------------
    [[nodiscard]] bool read_data(std::uint32_t slot, std::size_t offset,
                                 std::span<std::byte> out);
    [[nodiscard]] bool write_data(std::uint32_t slot, std::size_t offset,
                                  std::span<const std::byte> in);

    [[nodiscard]] bool flush_all();
    [[nodiscard]] aio::file_backend& backend() noexcept { return *backend_; }
    [[nodiscard]] const store_config& config() const noexcept { return cfg_; }

private:
    store(store_config cfg, std::vector<superblock> images,
          std::uint64_t slot_bytes, std::size_t disk_capacity);

    /// Write the file header and both superblock slots of one file.
    bool init_slot_file(std::uint32_t slot);

    store_config cfg_;
    std::uint64_t slot_bytes_;
    std::uint64_t uuid_;
    std::uint64_t meta_mask_ = ~std::uint64_t{0};
    std::vector<superblock> images_;
    std::unique_ptr<aio::file_backend> backend_;
};

}  // namespace liberation::raid::persist
