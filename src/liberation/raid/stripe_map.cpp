// stripe_map is header-only; this translation unit exists so the build
// exercises the header under the project's warning set.
#include "liberation/raid/stripe_map.hpp"
