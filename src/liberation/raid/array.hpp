// RAID-6 array controller over virtual disks, coded with the optimal
// Liberation algorithms.
//
// Supported operations:
//   * extent reads, transparently degraded when disks are failed or return
//     latent sector errors (up to two columns per stripe);
//   * extent writes: full-stripe writes encode in one pass; sub-stripe
//     writes take the read-modify-write small-write path, patching exactly
//     the 2 (occasionally 3) parity elements the Liberation update rule
//     names — the update-optimality the paper motivates in Section I;
//   * disk fail / replace, rebuild (see rebuild.hpp) and scrubbing
//     (see scrubber.hpp);
//   * fault tolerance: every disk read/write funnels through a retrying
//     io_policy (transient errors are retried with backoff), outcomes feed
//     a per-disk health_monitor that trips error-prone disks to failed,
//     and failed disks are automatically replaced from a hot-spare pool
//     with an incremental background rebuild (md's recovery window)
//     interleaved with foreground I/O;
//   * async I/O pipeline: at io_queue_depth > 1 the hot stripe paths
//     (multi-stripe full-stripe writes, rebuild slices, scrub passes) run
//     over an io_uring-style submission/completion queue pair (aio/) that
//     batches per-disk I/O, coalesces adjacent reads, and overlaps parity
//     computation with in-flight column writes. Retry/backoff and health
//     accounting stay in the execution stage (disk_read/disk_write are
//     the queue's backend); checksum verification runs as a
//     completion-stage decorator. Queue depth 1 selects the synchronous
//     paths byte-for-byte.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "liberation/aio/queue_pair.hpp"
#include "liberation/codes/stripe.hpp"
#include "liberation/obs/obs.hpp"
#include "liberation/core/liberation_optimal_code.hpp"
#include "liberation/integrity/integrity_region.hpp"
#include "liberation/raid/health.hpp"
#include "liberation/raid/intent_log.hpp"
#include "liberation/raid/io_policy.hpp"
#include "liberation/raid/latency_monitor.hpp"
#include "liberation/raid/stripe_map.hpp"
#include "liberation/raid/vdisk.hpp"

namespace liberation::util {
class thread_pool;
}  // namespace liberation::util

namespace liberation::raid {

namespace persist {
class store;
struct mounter;
}  // namespace persist

struct array_config {
    std::uint32_t k = 4;            ///< data disks
    std::uint32_t p = 0;            ///< code prime; 0 = smallest odd prime >= k
    std::size_t element_size = 4096;
    std::size_t stripes = 32;
    std::size_t sector_size = 4096;
    /// parity_first enables add_data_disk(); pick p large enough for the
    /// anticipated maximum k (the paper's "Case (b)" deployment).
    parity_layout layout = parity_layout::rotating;

    // ---- fault tolerance ---------------------------------------------
    /// Blank standby disks. When a disk fails (operator, injected, or
    /// health-tripped) one is promoted automatically and rebuilt in the
    /// background. 0 = no spares, failures wait for the operator.
    std::uint32_t hot_spares = 0;
    /// Promote spares automatically on failure (requires hot_spares > 0).
    bool auto_failover = true;
    /// Stripes of background rebuild serviced per foreground read/write.
    std::size_t rebuild_batch_stripes = 4;
    /// Retry/backoff policy for every disk I/O.
    io_policy_config io_retry{};
    /// Error thresholds that trip a disk to failed.
    health_config health{};
    /// Fail-slow tolerance: adaptive per-disk read deadlines, hedged
    /// reconstructed reads, and slow-disk quarantine (latency_monitor.hpp).
    /// Off by default — hedging changes virtual-time accounting.
    latency_config latency{};

    // ---- end-to-end integrity ----------------------------------------
    /// Verify every host read against the per-disk checksum regions; a
    /// mismatch demotes the column to an erasure, the stripe is decoded,
    /// the recovered bytes are re-verified, and the repair is written back
    /// (read-repair). Scrub and rebuild verification are always on.
    bool verify_reads = true;
    /// Intent-log capacity in stripes; 0 = unbounded. When the log is
    /// full, writes that would need a new entry fail loudly
    /// (writes_rejected_log_full) instead of proceeding unjournaled.
    std::size_t intent_log_entries = 0;

    // ---- async I/O pipeline ------------------------------------------
    /// Per-disk in-flight window of the submission-queue engine (aio/).
    /// > 1 enables the pipelined stripe paths: multi-stripe full-stripe
    /// writes submit all k+2 column I/Os per stripe and encode parity
    /// while data is in flight; rebuild and scrub window-prefetch stripes
    /// with per-disk read coalescing. 1 selects the synchronous
    /// one-request-at-a-time paths (byte-identical results either way).
    std::size_t io_queue_depth = 8;
    /// Coalesce adjacent reads per disk into single transfers (writes are
    /// never coalesced; see aio::aio_config::merge_adjacent).
    bool io_merge = true;
    /// Optional worker pool for the aio engine: batches for different
    /// disks execute concurrently. Per-disk order is preserved, but
    /// cross-disk write order becomes nondeterministic — leave null for
    /// seeded power-loss / chaos replay.
    util::thread_pool* io_workers = nullptr;

    // ---- observability -----------------------------------------------
    /// Drive the array's metrics/tracing hub off its virtual clock
    /// instead of the steady clock: every latency a histogram or trace
    /// span sees is then deterministic (virtual time only advances when
    /// the retry policy charges backoff or a test advances it), which is
    /// what the latency-distribution tests run on. Real deployments keep
    /// the default steady clock.
    bool obs_virtual_time = false;
};

/// Copyable snapshot of the array's operation counters. The live counters
/// are atomic (pooled rebuild/resilver workers increment them concurrently
/// with the foreground path); stats() takes a relaxed snapshot.
struct array_stats {
    std::uint64_t full_stripe_writes = 0;
    std::uint64_t small_writes = 0;
    std::uint64_t parity_elements_updated = 0;  ///< by small writes
    std::uint64_t degraded_stripe_reads = 0;    ///< full-stripe decodes
    std::uint64_t degraded_element_reads = 0;   ///< row-parity fast path
    std::uint64_t media_errors_recovered = 0;   ///< latent errors healed by decode
    std::uint64_t transient_errors_masked = 0;  ///< ops saved by retries
    std::uint64_t retries_exhausted = 0;        ///< transient after full budget
    std::uint64_t disks_tripped = 0;            ///< failed by the health monitor
    std::uint64_t spares_promoted = 0;
    std::uint64_t rebuilds_completed = 0;       ///< background sessions finished
    std::uint64_t rebuild_stripes_failed = 0;   ///< unrecoverable during bg rebuild
    std::uint64_t rebuild_sessions_stalled = 0; ///< > 2 losses, operator needed
    std::uint64_t checksum_mismatches = 0;      ///< blocks failing their CRC
    std::uint64_t reads_self_healed = 0;        ///< stripes repaired on read
    std::uint64_t reads_unrecoverable = 0;      ///< verified reads refused
    std::uint64_t checksum_metadata_repaired = 0;  ///< stale/damaged CRCs fixed
    std::uint64_t writes_rejected_log_full = 0; ///< intent log at capacity
    // ---- fail-slow tolerance (latency_monitor.hpp) ---------------------
    std::uint64_t deadline_exceeded = 0;   ///< reads outliving their deadline
    std::uint64_t hedged_reads = 0;        ///< reconstruction hedges issued
    std::uint64_t hedge_wins = 0;          ///< hedges that beat the straggler
    std::uint64_t slow_trips = 0;          ///< disks quarantined suspect_slow
    std::uint64_t slow_recoveries = 0;     ///< quarantines lifted by probes
    std::uint64_t slow_routed_reads = 0;   ///< reads routed around quarantine
    // ---- persistence (raid/persist/) ----------------------------------
    std::uint64_t intent_replayed = 0;     ///< journaled stripes re-synced at mount
    std::uint64_t stale_disks_kicked = 0;  ///< members demoted to rebuild at mount
    // ---- async I/O pipeline (mirrors aio::aio_stats) ------------------
    std::uint64_t aio_batches = 0;            ///< transfers issued by the engine
    std::uint64_t aio_merges = 0;             ///< reads absorbed into a neighbour
    std::uint64_t aio_split_retries = 0;      ///< merged transfers re-driven split
    std::uint64_t aio_inflight_highwater = 0; ///< max pending on any one disk
};

class raid6_array {
public:
    explicit raid6_array(const array_config& cfg);
    /// Out of line: ~unique_ptr<persist::store> needs the complete type.
    ~raid6_array();

    raid6_array(const raid6_array&) = delete;
    raid6_array& operator=(const raid6_array&) = delete;

    [[nodiscard]] const stripe_map& map() const noexcept { return map_; }
    [[nodiscard]] const core::liberation_optimal_code& code() const noexcept {
        return code_;
    }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return map_.capacity();
    }
    [[nodiscard]] std::uint32_t disk_count() const noexcept {
        return map_.n();
    }
    [[nodiscard]] vdisk& disk(std::uint32_t d) { return *disks_[d]; }
    [[nodiscard]] const vdisk& disk(std::uint32_t d) const { return *disks_[d]; }
    [[nodiscard]] array_stats stats() const noexcept;

    // ---- observability -----------------------------------------------
    /// The array's metrics + tracing hub. Latency histograms
    /// (raid_*_ns/io_*_ns/aio_*_ns) and gauges update live on the hot
    /// paths; counters mirror the atomic stats at export time via a
    /// registered collector, so obs().metrics_text() is one coherent
    /// Prometheus exposition of the whole pipeline. Enable
    /// obs().trace().enable() to capture Chrome trace spans.
    [[nodiscard]] obs::hub& obs() noexcept { return obs_; }
    [[nodiscard]] const obs::hub& obs() const noexcept { return obs_; }

    // ---- end-to-end integrity ----------------------------------------

    [[nodiscard]] bool verify_reads() const noexcept { return verify_reads_; }
    /// Checksum granularity: gcd(sector_size, element_size), so every
    /// element-aligned disk I/O is block-aligned.
    [[nodiscard]] std::size_t integrity_block() const noexcept {
        return integrity_block_;
    }
    /// Battery-backed checksum region of disk slot `d`. Preserved across
    /// fail/replace/promote: it describes the slot's last-known contents,
    /// which is what rebuild verification checks reconstructions against.
    [[nodiscard]] integrity::integrity_region& integrity(std::uint32_t d) {
        return regions_[d];
    }
    [[nodiscard]] const integrity::integrity_region& integrity(
        std::uint32_t d) const {
        return regions_[d];
    }

    [[nodiscard]] std::uint32_t failed_disk_count() const noexcept;

    /// Read [addr, addr+out.size()); false only if more than two columns of
    /// some stripe are unavailable (data loss).
    [[nodiscard]] bool read(std::size_t addr, std::span<std::byte> out);

    /// Write [addr, addr+in.size()). Returns false on unrecoverable layout
    /// damage (> 2 unavailable columns in a touched stripe).
    [[nodiscard]] bool write(std::size_t addr, std::span<const std::byte> in);

    /// Fail-stop a disk. If a hot spare is available (and auto_failover is
    /// on) it is promoted and a background rebuild starts on the next
    /// foreground operation — or call service_background_rebuild directly.
    void fail_disk(std::uint32_t d);

    /// Install a blank replacement (contents must be rebuilt afterwards).
    /// Cancels any background-rebuild claim on the slot and resets its
    /// health history (it is new hardware).
    void replace_disk(std::uint32_t d);

    // ---- fault tolerance ---------------------------------------------

    [[nodiscard]] const health_monitor& health() const noexcept {
        return health_;
    }
    /// Fail-slow monitor: per-disk latency distributions, adaptive
    /// deadlines, and quarantine state (config: array_config::latency).
    [[nodiscard]] const latency_monitor& latency_mon() const noexcept {
        return latmon_;
    }
    [[nodiscard]] virtual_clock& clock() noexcept { return clock_; }
    [[nodiscard]] io_policy_stats io_stats() const noexcept {
        return policy_.stats();
    }
    [[nodiscard]] std::uint32_t spare_count() const noexcept {
        return static_cast<std::uint32_t>(spares_.size());
    }
    [[nodiscard]] bool rebuild_active() const noexcept {
        return rebuild_active_;
    }
    /// True when more disks are awaiting rebuild than RAID-6 can decode
    /// around (> 2): the session cannot make progress until the operator
    /// replaces a disk. Reads of the masked columns fail loudly meanwhile.
    [[nodiscard]] bool rebuild_stalled() const noexcept {
        return rebuild_stalled_;
    }
    /// Disks currently being rebuilt in the background.
    [[nodiscard]] std::uint32_t rebuilding_disk_count() const noexcept {
        return static_cast<std::uint32_t>(rebuilding_.size());
    }
    /// Stripes the current background rebuild session has yet to process
    /// (the furthest-behind member's backlog).
    [[nodiscard]] std::size_t rebuild_stripes_remaining() const noexcept {
        std::size_t remaining = 0;
        for (const rebuild_member& m : rebuilding_) {
            remaining = std::max(remaining, map_.stripes() - m.cursor);
        }
        return remaining;
    }

    /// Promote spares for any failed disks and advance the background
    /// rebuild by up to `max_stripes` stripes. Called implicitly from
    /// read()/write() (a batch per host op); call directly to make
    /// progress on an idle array. Returns stripes processed now.
    std::size_t service_background_rebuild(std::size_t max_stripes);

    /// Run the background rebuild to completion (no-op when idle).
    void drain_background_rebuild();

    /// All disk reads funnel through here: retry policy, health
    /// accounting, health tripping, and masking of not-yet-rebuilt extents
    /// on promoted spares (io_status::rebuilding).
    io_status disk_read(std::uint32_t d, std::size_t offset,
                        std::span<std::byte> out);

    /// Patrol read: walk every stripe, reconstruct unreadable strips
    /// (latent sector errors) and rewrite them in place. Plain reads only
    /// touch data columns, so parity-strip media errors are only ever
    /// found — and healed — here. Returns the number of strips healed;
    /// stripes with more than two unavailable columns are skipped.
    std::size_t resilver();

    // ---- write-hole protection (see intent_log.hpp) -------------------

    /// Drop every disk write after the next `disk_writes` ones, simulating
    /// power loss mid-update. The intent log survives (battery-backed).
    void simulate_power_loss_after(std::uint64_t disk_writes) noexcept {
        write_budget_ = disk_writes;
    }

    [[nodiscard]] bool powered() const noexcept { return powered_; }

    /// Power back on. Stripes named by the journal may be torn; call
    /// recover_write_hole() before trusting parity.
    void reboot() noexcept {
        powered_ = true;
        write_budget_ = UINT64_MAX;
    }

    [[nodiscard]] const intent_log& journal() const noexcept {
        return journal_;
    }

    /// Re-sync parity of every journaled stripe (data columns are taken as
    /// the source of truth, exactly like md's resync after an unclean
    /// shutdown). Returns the number of stripes re-synced; stripes with
    /// unreadable columns are left journaled.
    std::size_t recover_write_hole();

    // ---- persistence (see raid/persist/) ------------------------------

    /// True when the array is backed by an on-disk store (created with
    /// persist::create_array or persist::mount_array).
    [[nodiscard]] bool persistent() const noexcept {
        return store_ != nullptr;
    }
    /// The backing store, or nullptr for a purely in-memory array.
    [[nodiscard]] persist::store* persistence() noexcept {
        return store_.get();
    }

    /// Clean shutdown of a persistent array: refresh every superblock
    /// image (checksum tables, intent log, membership), mark them clean,
    /// persist and fsync everything, and detach from the store. The next
    /// mount sees `clean` and skips intent replay. Returns false when any
    /// superblock could not be written (the array still detaches — the
    /// next mount simply treats it as unclean). No-op (true) when the
    /// array is not persistent.
    bool unmount();

    /// Online growth (parity_first layout only): append a blank disk that
    /// becomes data column k. No parity is recomputed — the new column was
    /// a phantom zero column of the fixed-p Liberation code all along, so
    /// every existing stripe stays valid (paper Section III, Case (b)).
    /// Requires k < p and all disks online. Note the linear address space
    /// is re-laid-out (stripes widen): address stability is per
    /// (stripe, column), as with any single-shot capacity expansion.
    void add_data_disk();

    // ---- stripe-granular interface (rebuild / scrub engines) ----------

    /// Load every readable strip of `stripe` into `dst` (codeword column
    /// order) and report which columns are unavailable. When `statuses` is
    /// non-null it receives the per-column io_status (so callers can tell
    /// transient from latent unavailability). Returns false if more than
    /// two columns are gone.
    [[nodiscard]] bool load_stripe(std::size_t stripe,
                                   const codes::stripe_view& dst,
                                   std::vector<std::uint32_t>& erased,
                                   std::vector<io_status>* statuses = nullptr);

    /// Account a verified read we refused to serve: bumps the stat,
    /// appends a flight-recorder breadcrumb, and on the array's *first*
    /// such loss writes an automatic postmortem bundle (no-op unless
    /// LIBERATION_POSTMORTEM_DIR is set).
    void note_unrecoverable_read(std::size_t stripe);

    /// Write the given codeword columns of `stripe` back to their disks.
    /// Columns on failed disks are skipped (reported false). When
    /// `col_crcs` is non-null, `col_crcs[col]` (null entries allowed)
    /// points at the column's precomputed per-integrity-block CRC32C
    /// words — produced inside the traversal that produced the bytes —
    /// and the integrity region installs them instead of re-reading the
    /// strip.
    bool store_columns(std::size_t stripe, const codes::stripe_view& src,
                       std::span<const std::uint32_t> cols,
                       const std::uint32_t* const* col_crcs = nullptr);

    /// Result of load_stripe_verified(). When ok, `buf` holds a fully
    /// decoded, checksum-verified stripe; `erased` are the columns that
    /// were unavailable (decoded in the buffer), `healed` the columns whose
    /// checksums exposed silent corruption (decoded, and rewritten when
    /// writeback was requested), `meta_repaired` the columns whose *stored
    /// checksums* turned out to be the damaged side (data verified fine
    /// once decoded — the metadata was refreshed).
    struct stripe_recovery {
        bool ok = false;
        bool verified = false;  ///< checksum classification actually ran
        std::vector<std::uint32_t> erased;
        std::vector<io_status> statuses;
        std::vector<std::uint32_t> healed;
        std::vector<std::uint32_t> meta_repaired;
        /// Per-column CRC32C words captured by the verification sweeps
        /// (the fused sweep produces the verdict *and* these in one
        /// traversal): columns with crc_valid[col] != 0 hold
        /// strip_size/integrity_block words at crcs[col * blocks]. Commit
        /// paths (rebuild writeback) hand them to store_columns so
        /// disk_write installs instead of re-traversing the strip.
        std::vector<std::uint32_t> crcs;
        std::vector<std::uint8_t> crc_valid;
    };

    /// Checksum-first stripe recovery: load every readable strip, demote
    /// checksum-mismatching columns to erasures, decode with the optimal
    /// decoder, re-verify reconstructions against their stored checksums
    /// (mismatch with all-verified inputs means the *metadata* was stale —
    /// it is refreshed, never trusted over a parity-consistent decode),
    /// and optionally write repairs back. `extra_erasures` pre-declares
    /// columns the caller already distrusts (rebuild targets). With
    /// `trust_parity` false (torn-stripe fallback) no data column may be
    /// reconstructed from parity; the caller re-encodes parity instead.
    /// Callers are responsible for torn stripes: this routine assumes
    /// parity is consistent with data unless told otherwise.
    [[nodiscard]] stripe_recovery load_stripe_verified(
        std::size_t stripe, const codes::stripe_view& buf, bool writeback,
        std::span<const std::uint32_t> extra_erasures = {},
        bool trust_parity = true);

    /// The classification half of load_stripe_verified() for callers that
    /// already hold the stripe bytes (the aio stripe_loader prefetches
    /// whole windows): `buf` holds every column as read, `statuses` the
    /// per-column read results (non-ok = erased). Behaves exactly like
    /// load_stripe_verified() from that point on — checksum-first suspect
    /// demotion, optimal decode, reconstruction re-verify, metadata
    /// repair, optional writeback.
    [[nodiscard]] stripe_recovery verify_loaded_stripe(
        std::size_t stripe, const codes::stripe_view& buf, bool writeback,
        std::span<const std::uint32_t> extra_erasures, bool trust_parity,
        std::vector<io_status> statuses);

    // ---- async I/O pipeline ------------------------------------------

    /// The array's submission/completion queue engine. All pipelined
    /// stripe paths run through it; tests and benches may submit directly
    /// (requests execute through disk_read/disk_write, so retry, health,
    /// masking, and the power-loss budget all apply; reads flagged
    /// aio::flag_verify pass the checksum completion stage).
    [[nodiscard]] aio::queue_pair& aio_engine() noexcept {
        return *aio_engine_;
    }
    /// Configured per-disk in-flight window (array_config::io_queue_depth;
    /// 1 = synchronous paths).
    [[nodiscard]] std::size_t io_queue_depth() const noexcept {
        return aio_depth_;
    }

    /// Convenience: allocate a stripe buffer with this array's geometry.
    [[nodiscard]] codes::stripe_buffer make_stripe_buffer() const {
        return {map_.rows(), map_.n(), map_.element_size()};
    }

private:
    /// Live counters behind array_stats (see that struct for semantics).
    struct atomic_stats {
        std::atomic<std::uint64_t> full_stripe_writes{0};
        std::atomic<std::uint64_t> small_writes{0};
        std::atomic<std::uint64_t> parity_elements_updated{0};
        std::atomic<std::uint64_t> degraded_stripe_reads{0};
        std::atomic<std::uint64_t> degraded_element_reads{0};
        std::atomic<std::uint64_t> media_errors_recovered{0};
        std::atomic<std::uint64_t> transient_errors_masked{0};
        std::atomic<std::uint64_t> retries_exhausted{0};
        std::atomic<std::uint64_t> disks_tripped{0};
        std::atomic<std::uint64_t> spares_promoted{0};
        std::atomic<std::uint64_t> rebuilds_completed{0};
        std::atomic<std::uint64_t> rebuild_stripes_failed{0};
        std::atomic<std::uint64_t> rebuild_sessions_stalled{0};
        std::atomic<std::uint64_t> checksum_mismatches{0};
        std::atomic<std::uint64_t> reads_self_healed{0};
        std::atomic<std::uint64_t> reads_unrecoverable{0};
        std::atomic<std::uint64_t> checksum_metadata_repaired{0};
        std::atomic<std::uint64_t> writes_rejected_log_full{0};
        std::atomic<std::uint64_t> deadline_exceeded{0};
        std::atomic<std::uint64_t> hedged_reads{0};
        std::atomic<std::uint64_t> hedge_wins{0};
        std::atomic<std::uint64_t> slow_trips{0};
        std::atomic<std::uint64_t> slow_recoveries{0};
        std::atomic<std::uint64_t> slow_routed_reads{0};
        std::atomic<std::uint64_t> intent_replayed{0};
        std::atomic<std::uint64_t> stale_disks_kicked{0};

        [[nodiscard]] array_stats snapshot() const noexcept;
    };

    /// Resolve the hub's clock, histograms, gauges, and the export-time
    /// counter collector (constructor tail).
    void init_obs(const array_config& cfg);
    /// The collector body: mirror every atomic counter family
    /// (array_stats, io_policy_stats, aio_stats) into registry counters.
    void mirror_counters();
    /// Refresh the fault-tolerance gauges (failed disks, spares, rebuild
    /// backlog). Foreground thread only — the underlying state is not
    /// atomic, which is exactly why these are pushed in-line rather than
    /// sampled by the collector.
    void update_health_gauges() noexcept;

    /// Degraded path: load + decode a full stripe into `buf`.
    [[nodiscard]] bool load_and_decode(std::size_t stripe,
                                       const codes::stripe_view& buf);

    /// Small-read fast path: reconstruct one data element via its row
    /// parity (k reads) instead of decoding the whole stripe
    /// (p*(k+1) reads). Only valid when every other column of that row is
    /// readable. Returns false to request the full-stripe fallback.
    [[nodiscard]] bool read_element_degraded(std::size_t stripe,
                                             std::uint32_t row,
                                             std::uint32_t col,
                                             std::span<std::byte> out);

    [[nodiscard]] bool write_full_stripe(std::size_t stripe,
                                         std::span<const std::byte> in);
    /// Pipelined counterpart of write_full_stripe() for a run of `count`
    /// consecutive aligned full stripes (io_queue_depth > 1): per window,
    /// each stripe is journaled, its data columns submitted zero-copy,
    /// parity encoded while they land, then the window drains and the
    /// journal entries clear. The window is capped by the intent log's
    /// headroom so a bounded log never rejects a write the synchronous
    /// path would have accepted.
    [[nodiscard]] bool write_full_stripes(std::size_t first, std::size_t count,
                                          std::span<const std::byte> in);
    [[nodiscard]] bool write_partial(std::size_t stripe, std::size_t in_stripe,
                                     std::span<const std::byte> in);

    /// All mutating disk I/O funnels through here: power-loss simulation
    /// (once the budget runs out the write is dropped on the floor and the
    /// array goes dark), then the retry policy and health accounting.
    /// `crcs` non-null = the caller already holds the per-block CRC32C of
    /// `in` (computed inside the traversal that produced the bytes); the
    /// integrity region installs the words instead of re-reading the
    /// buffer. Requires a block-aligned extent, exactly like record().
    io_status disk_write(std::uint32_t disk, std::size_t offset,
                         std::span<const std::byte> in,
                         const std::uint32_t* crcs = nullptr);

    /// True when any strip of [offset, offset+len) on disk `d` lies in a
    /// stripe the background rebuild has not reached yet — reads there
    /// must be treated as erasures, not trusted (the spare is still
    /// blank). Extent-aware so coalesced multi-strip reads are masked
    /// whenever any covered strip is; the aio split-retry then localizes
    /// the mask to the strips that deserve it.
    [[nodiscard]] bool rebuild_masked(std::uint32_t d, std::size_t offset,
                                      std::size_t len) const noexcept;

    /// Record a policy-mediated I/O outcome; trips the disk on threshold.
    void note_io(std::uint32_t d, io_kind kind, const io_result& r);

    // ---- fail-slow tolerance (latency_monitor.hpp) ---------------------

    /// disk_read in deferred-time-charge mode: the policy reports the
    /// virtual cost in `latency_us` but does not advance the clock — the
    /// hedged read path charges whichever leg of the race is served.
    io_status disk_read_deferred(std::uint32_t d, std::size_t offset,
                                 std::span<std::byte> out,
                                 std::uint64_t& latency_us);

    /// Fail-slow-aware chunk read on the fast path: `strip_lo` is the
    /// byte offset inside codeword column `col`'s strip, `dst` both the
    /// destination and the read length. Routes around quarantined disks
    /// via decode, hedges reads that outlive the adaptive deadline, and
    /// feeds the latency monitor. Checksum-verifies exactly like
    /// verified_disk_read when verify-on-read is enabled.
    io_status read_chunk_failslow(std::size_t stripe, std::uint32_t col,
                                  std::size_t strip_lo,
                                  std::span<std::byte> dst);

    /// Reconstruction read-set for one column range: submit every other
    /// column's strip through the aio engine (flag_verify), decode the
    /// missing column, verify the requested range against its stored
    /// checksum, and copy it into `dst`. False when the stripe cannot be
    /// decoded or the reconstruction fails verification.
    [[nodiscard]] bool reconstruct_column_range(std::size_t stripe,
                                                std::uint32_t col,
                                                std::size_t strip_lo,
                                                std::span<std::byte> dst);

    /// Promote spares for every failed disk (auto_failover). Starts or
    /// extends the background rebuild session.
    void handle_failed_disks();

    /// Entry hook for read()/write(): failover + one rebuild batch.
    void service_events();

    /// Journal a stripe with its target-column mask; false (and a loud
    /// write failure for the caller) when the log is at capacity.
    [[nodiscard]] bool journal_mark(std::size_t stripe, std::uint64_t cols);
    void journal_clear(std::size_t stripe);

    // ---- persistence hooks (no-ops while store_ is null) ---------------

    /// Take ownership of the backing store and wire every member disk's
    /// media sink to its data area. Called once by the mounter/creator.
    void attach_persistence(std::unique_ptr<persist::store> st);
    /// Mirror medium mutations of slot `d` into the store's data area.
    void attach_media_sink(std::uint32_t d);
    /// Replicate the intent log into every metadata slot and persist.
    /// Fires on every journal mark/clear — the on-disk analogue of
    /// flushing the NVRAM word before data I/O is issued.
    void persist_intent();
    /// Persist the checksum words covering a write of `len` bytes at
    /// `offset` on slot `disk` into that slot's own superblock. Runs even
    /// powered-off: the superblock models the battery-backed metadata
    /// domain, so record-ahead checksums of dropped writes are durable —
    /// that is what makes torn writes detectable after a remount.
    void persist_checksums(std::uint32_t disk, std::size_t offset,
                           std::size_t len);
    /// Recompute slot states, watermarks, spare level, and identity in
    /// every metadata image, bump the membership epoch (`events`), and
    /// persist all metadata slots. Called on failure, promotion,
    /// replacement, and rebuild completion.
    void persist_membership();
    /// Persist just the rebuild watermarks (one batch advanced; no epoch
    /// bump — the membership did not change).
    void persist_watermarks();

    /// (Re)build the aio engine for the current disk count and register
    /// the checksum-verify completion stage on it.
    void rebuild_aio_engine(const aio::aio_config& acfg);

    /// disk_read + checksum verification (verify-on-read mode only):
    /// bytes that read fine but fail their stored CRC come back as
    /// io_status::checksum_mismatch so callers demote the column.
    io_status verified_disk_read(std::uint32_t d, std::size_t offset,
                                 std::span<std::byte> out);

    /// Re-sync one journaled stripe: classify every checksum-mismatching
    /// data column as torn (targeted by the in-flight update — accept the
    /// on-disk bytes) or corrupt (untargeted — recover via checksum-guided
    /// candidate decode), then re-encode parity from data and clear the
    /// journal entry. False leaves the stripe journaled.
    [[nodiscard]] bool resync_journaled_stripe(std::size_t stripe,
                                               const codes::stripe_view& buf);

    /// Corruption recovery for an *untargeted* column of a torn stripe:
    /// parity may itself be torn, so try decoding the column from each
    /// parity subset ({c}, {c,P}, {c,Q}) and accept the first candidate
    /// matching the column's stored checksum.
    [[nodiscard]] bool heal_journaled_column(std::size_t stripe,
                                             const codes::stripe_view& buf,
                                             std::uint32_t col);

    /// Adapter plugging the array's I/O funnel in as the aio engine's
    /// execution backend: reads/writes keep their retry, health, masking,
    /// and power-loss semantics no matter which path submitted them.
    struct disk_backend final : aio::io_backend {
        explicit disk_backend(raid6_array& a) noexcept : owner(a) {}
        io_status execute(const aio::io_desc& d) override;
        raid6_array& owner;
    };

    stripe_map map_;
    core::liberation_optimal_code code_;
    std::size_t sector_size_;
    std::vector<std::unique_ptr<vdisk>> disks_;
    atomic_stats stats_;

    // ---- observability -----------------------------------------------
    obs::hub obs_;
    /// Histograms/gauges resolved once at construction (registry lookups
    /// take a mutex; the hot paths must not).
    obs::latency_histogram* hist_read_ = nullptr;
    obs::latency_histogram* hist_write_full_ = nullptr;
    obs::latency_histogram* hist_write_small_ = nullptr;
    obs::latency_histogram* hist_hedge_delay_ = nullptr;
    obs::gauge* gauge_failed_disks_ = nullptr;
    obs::gauge* gauge_spares_ = nullptr;
    obs::gauge* gauge_rebuild_remaining_ = nullptr;
    obs::gauge* gauge_journal_ = nullptr;
    intent_log journal_;
    std::vector<integrity::integrity_region> regions_;
    bool verify_reads_;
    std::size_t integrity_block_;
    /// Atomic: aio worker-mode writes may race the power-loss budget.
    std::atomic<bool> powered_{true};
    std::atomic<std::uint64_t> write_budget_{UINT64_MAX};

    // ---- async I/O pipeline ------------------------------------------
    std::size_t aio_depth_;
    disk_backend backend_{*this};
    std::unique_ptr<aio::queue_pair> aio_engine_;

    // ---- fault tolerance ---------------------------------------------
    virtual_clock clock_;
    io_policy policy_;
    health_monitor health_;
    latency_monitor latmon_;
    bool auto_failover_;
    std::size_t rebuild_batch_stripes_;
    std::uint32_t next_disk_id_;
    std::vector<std::unique_ptr<vdisk>> spares_;
    /// One entry per disk being rebuilt in the background (promoted
    /// spare). Each member keeps its own watermark: stripes >= cursor are
    /// masked on that disk, stripes below it are rebuilt (and maintained
    /// by foreground writes) and stay trusted even when another member
    /// joins the session later.
    struct rebuild_member {
        std::uint32_t disk;
        std::size_t cursor;  ///< next stripe to rebuild on this disk
    };
    std::vector<rebuild_member> rebuilding_;
    bool rebuild_active_ = false;
    bool rebuild_stalled_ = false;  ///< > 2 members: see rebuild_stalled()
    bool in_service_ = false;  ///< reentrancy guard for the rebuild batch
    /// Set from deep I/O paths (possibly pool threads) when the health
    /// monitor trips a disk; serviced at the next foreground entry.
    std::atomic<bool> pending_failover_{false};

    // ---- persistence ---------------------------------------------------
    /// Backing store (raid/persist/); null for in-memory arrays. The
    /// mounter is the only outside party that may install it and poke the
    /// array's state while reassembling.
    friend struct persist::mounter;
    std::unique_ptr<persist::store> store_;
};

}  // namespace liberation::raid
