// Write-intent log: closes the RAID-5/6 "write hole".
//
// A stripe update touches several disks; power loss between those writes
// leaves the stripe *torn* — parity inconsistent with data — and a later
// disk failure would then reconstruct garbage silently. The classic fix
// (md's bitmap, hardware NVRAM) is an intent log: persistently record
// "stripe S is being modified" before the first disk write and clear it
// after the last. Recovery after a crash re-syncs parity of exactly the
// stripes that were in flight.
//
// The simulator models the log as a small battery-backed region: its
// contents survive raid6_array::simulate_power_loss(), while in-flight
// disk writes are dropped.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "liberation/util/assert.hpp"

namespace liberation::raid {

class intent_log {
public:
    /// Mark a stripe dirty. Idempotent. (In hardware this is the point
    /// where the NVRAM word is flushed, before any data hits the disks.)
    void mark(std::size_t stripe) { dirty_.insert(stripe); }

    /// Clear a stripe after all its disk writes completed.
    void clear(std::size_t stripe) { dirty_.erase(stripe); }

    [[nodiscard]] bool is_dirty(std::size_t stripe) const {
        return dirty_.count(stripe) != 0;
    }

    [[nodiscard]] std::vector<std::size_t> dirty_stripes() const {
        return {dirty_.begin(), dirty_.end()};
    }

    [[nodiscard]] std::size_t size() const noexcept { return dirty_.size(); }

private:
    std::set<std::size_t> dirty_;
};

}  // namespace liberation::raid
