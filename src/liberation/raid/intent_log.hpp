// Write-intent log: closes the RAID-5/6 "write hole".
//
// A stripe update touches several disks; power loss between those writes
// leaves the stripe *torn* — parity inconsistent with data — and a later
// disk failure would then reconstruct garbage silently. The classic fix
// (md's bitmap, hardware NVRAM) is an intent log: persistently record
// "stripe S is being modified" before the first disk write and clear it
// after the last. Recovery after a crash re-syncs parity of exactly the
// stripes that were in flight.
//
// Each entry also records *which columns* the in-flight update targets,
// as a bitmask (so the array is capped at 64 columns). Recovery uses the
// mask to tell a torn write (a targeted column whose checksum mismatches:
// the new bytes half-landed — accept what is on disk and re-sync parity)
// from silent corruption that struck the same stripe while it was torn
// (an *untargeted* column mismatching: the update never meant to touch it,
// so its old checksum is still authoritative).
//
// Every entry additionally carries a monotonic *sequence number*, stamped
// when the stripe is first marked (re-marking widens the mask but keeps
// the original stamp: the hazard began at the first mark). The sequence
// defines the log's replay order — dirty_stripes() returns stripes oldest
// mark first — and survives serialization, so a remounted array replays
// in the same order the crashes happened.
//
// Replay order and the full log. Replay (recover_write_hole) walks the
// entries oldest first. That ordering matters exactly when the log is at
// capacity: each successfully re-synced stripe clears its entry *during*
// the replay, so a full log drains front-to-back and frees capacity for
// new writes as it goes — the oldest hazards, which have been exposed the
// longest, are retired first. Stripes that cannot be re-synced yet (a
// column is unreadable, or power is lost again mid-replay) keep their
// entries and their original stamps; while they hold the log at capacity,
// new writes that need a fresh entry keep failing *loudly*
// (writes_rejected_log_full) — a full log never silently sheds an entry
// and never admits an unjournaled write.
//
// The simulator models the log as a small battery-backed region: its
// contents survive raid6_array::simulate_power_loss(), while in-flight
// disk writes are dropped. The persistence layer (raid/persist/)
// additionally serializes the entries into every disk's superblock, so
// the log also survives a full process kill; restore() rebuilds it at
// mount. Real NVRAM is small, so the log takes a configurable capacity
// (0 = unbounded): when full, mark() refuses and the array fails the
// write *loudly* rather than proceeding unjournaled — an unjournaled torn
// stripe would be silent corruption waiting for a crash. A high-water
// mark records the worst case actually hit.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "liberation/util/assert.hpp"

namespace liberation::raid {

class intent_log {
public:
    /// Column mask meaning "assume every column may be in flight" (full
    /// stripe writes, and the conservative fallback paths).
    static constexpr std::uint64_t all_columns = ~std::uint64_t{0};

    /// One journaled stripe, as exposed to replay and serialization.
    struct entry {
        std::size_t stripe;
        std::uint64_t columns;  ///< target-column mask
        std::uint64_t seq;      ///< first-mark stamp; defines replay order
    };

    explicit intent_log(std::size_t capacity = 0) : capacity_(capacity) {}

    /// Mark a stripe dirty with the given target-column mask. Returns
    /// false — and counts a rejection — iff the log is at capacity and the
    /// stripe is not already present. Re-marking a present stripe ORs the
    /// masks (a second update of a torn stripe widens the hazard) and
    /// never fails. (In hardware this is the point where the NVRAM word
    /// is flushed, before any data hits the disks.)
    [[nodiscard]] bool mark(std::size_t stripe,
                            std::uint64_t columns = all_columns) {
        if (auto it = dirty_.find(stripe); it != dirty_.end()) {
            it->second.columns |= columns;
            return true;
        }
        if (capacity_ != 0 && dirty_.size() >= capacity_) {
            ++rejected_;
            return false;
        }
        dirty_.emplace(stripe, record{columns, next_seq_++});
        if (dirty_.size() > high_water_) high_water_ = dirty_.size();
        return true;
    }

    /// Clear a stripe after all its disk writes completed.
    void clear(std::size_t stripe) { dirty_.erase(stripe); }

    [[nodiscard]] bool is_dirty(std::size_t stripe) const {
        return dirty_.count(stripe) != 0;
    }

    /// Target-column mask of a dirty stripe; 0 if the stripe is clean.
    [[nodiscard]] std::uint64_t columns(std::size_t stripe) const {
        auto it = dirty_.find(stripe);
        return it == dirty_.end() ? 0 : it->second.columns;
    }

    /// Dirty stripes in replay order: oldest first mark first.
    [[nodiscard]] std::vector<std::size_t> dirty_stripes() const {
        std::vector<std::size_t> out;
        out.reserve(dirty_.size());
        for (const entry& e : entries()) out.push_back(e.stripe);
        return out;
    }

    /// Full entries in replay order (serialization and tests).
    [[nodiscard]] std::vector<entry> entries() const {
        std::vector<entry> out;
        out.reserve(dirty_.size());
        for (const auto& [stripe, rec] : dirty_)
            out.push_back({stripe, rec.columns, rec.seq});
        std::sort(out.begin(), out.end(),
                  [](const entry& a, const entry& b) { return a.seq < b.seq; });
        return out;
    }

    /// Reinstall a persisted entry at mount, keeping its original stamp
    /// (so replay order survives the crash). Restoring may exceed a
    /// *smaller* configured capacity — persisted hazards are never shed —
    /// but duplicates are a caller bug.
    void restore(std::size_t stripe, std::uint64_t columns,
                 std::uint64_t seq) {
        LIBERATION_EXPECTS(dirty_.count(stripe) == 0);
        dirty_.emplace(stripe, record{columns, seq});
        if (seq >= next_seq_) next_seq_ = seq + 1;
        if (dirty_.size() > high_water_) high_water_ = dirty_.size();
    }

    [[nodiscard]] std::size_t size() const noexcept { return dirty_.size(); }

    /// Configured capacity; 0 = unbounded.
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    /// Largest number of simultaneously dirty stripes ever observed.
    [[nodiscard]] std::size_t high_water() const noexcept {
        return high_water_;
    }

    /// Number of mark() calls refused because the log was full.
    [[nodiscard]] std::size_t rejected() const noexcept { return rejected_; }

private:
    struct record {
        std::uint64_t columns;
        std::uint64_t seq;
    };

    std::size_t capacity_;
    std::size_t high_water_ = 0;
    std::size_t rejected_ = 0;
    std::uint64_t next_seq_ = 1;
    std::map<std::size_t, record> dirty_;
};

}  // namespace liberation::raid
