// Write-intent log: closes the RAID-5/6 "write hole".
//
// A stripe update touches several disks; power loss between those writes
// leaves the stripe *torn* — parity inconsistent with data — and a later
// disk failure would then reconstruct garbage silently. The classic fix
// (md's bitmap, hardware NVRAM) is an intent log: persistently record
// "stripe S is being modified" before the first disk write and clear it
// after the last. Recovery after a crash re-syncs parity of exactly the
// stripes that were in flight.
//
// Each entry also records *which columns* the in-flight update targets,
// as a bitmask (so the array is capped at 64 columns). Recovery uses the
// mask to tell a torn write (a targeted column whose checksum mismatches:
// the new bytes half-landed — accept what is on disk and re-sync parity)
// from silent corruption that struck the same stripe while it was torn
// (an *untargeted* column mismatching: the update never meant to touch it,
// so its old checksum is still authoritative).
//
// The simulator models the log as a small battery-backed region: its
// contents survive raid6_array::simulate_power_loss(), while in-flight
// disk writes are dropped. Real NVRAM is small, so the log takes a
// configurable capacity (0 = unbounded): when full, mark() refuses and
// the array fails the write *loudly* rather than proceeding unjournaled —
// an unjournaled torn stripe would be silent corruption waiting for a
// crash. A high-water mark records the worst case actually hit.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "liberation/util/assert.hpp"

namespace liberation::raid {

class intent_log {
public:
    /// Column mask meaning "assume every column may be in flight" (full
    /// stripe writes, and the conservative fallback paths).
    static constexpr std::uint64_t all_columns = ~std::uint64_t{0};

    explicit intent_log(std::size_t capacity = 0) : capacity_(capacity) {}

    /// Mark a stripe dirty with the given target-column mask. Returns
    /// false — and counts a rejection — iff the log is at capacity and the
    /// stripe is not already present. Re-marking a present stripe ORs the
    /// masks (a second update of a torn stripe widens the hazard) and
    /// never fails. (In hardware this is the point where the NVRAM word
    /// is flushed, before any data hits the disks.)
    [[nodiscard]] bool mark(std::size_t stripe,
                            std::uint64_t columns = all_columns) {
        if (auto it = dirty_.find(stripe); it != dirty_.end()) {
            it->second |= columns;
            return true;
        }
        if (capacity_ != 0 && dirty_.size() >= capacity_) {
            ++rejected_;
            return false;
        }
        dirty_.emplace(stripe, columns);
        if (dirty_.size() > high_water_) high_water_ = dirty_.size();
        return true;
    }

    /// Clear a stripe after all its disk writes completed.
    void clear(std::size_t stripe) { dirty_.erase(stripe); }

    [[nodiscard]] bool is_dirty(std::size_t stripe) const {
        return dirty_.count(stripe) != 0;
    }

    /// Target-column mask of a dirty stripe; 0 if the stripe is clean.
    [[nodiscard]] std::uint64_t columns(std::size_t stripe) const {
        auto it = dirty_.find(stripe);
        return it == dirty_.end() ? 0 : it->second;
    }

    [[nodiscard]] std::vector<std::size_t> dirty_stripes() const {
        std::vector<std::size_t> out;
        out.reserve(dirty_.size());
        for (const auto& [stripe, mask] : dirty_) out.push_back(stripe);
        return out;
    }

    [[nodiscard]] std::size_t size() const noexcept { return dirty_.size(); }

    /// Configured capacity; 0 = unbounded.
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    /// Largest number of simultaneously dirty stripes ever observed.
    [[nodiscard]] std::size_t high_water() const noexcept {
        return high_water_;
    }

    /// Number of mark() calls refused because the log was full.
    [[nodiscard]] std::size_t rejected() const noexcept { return rejected_; }

private:
    std::size_t capacity_;
    std::size_t high_water_ = 0;
    std::size_t rejected_ = 0;
    std::map<std::size_t, std::uint64_t> dirty_;
};

}  // namespace liberation::raid
