#include "liberation/raid/vdisk.hpp"

#include <cstring>

#include "liberation/util/assert.hpp"

namespace liberation::raid {

vdisk::vdisk(std::uint32_t id, std::size_t capacity, std::size_t sector_size)
    : id_(id), sector_size_(sector_size), data_(capacity) {
    LIBERATION_EXPECTS(capacity > 0 && sector_size > 0);
}

bool vdisk::extent_readable(std::size_t offset, std::size_t len) const {
    if (bad_sectors_.empty()) return true;
    const std::size_t first = offset / sector_size_;
    const std::size_t last = (offset + len - 1) / sector_size_;
    auto it = bad_sectors_.lower_bound(first);
    return it == bad_sectors_.end() || it->first > last;
}

io_status vdisk::read(std::size_t offset, std::span<std::byte> out) {
    if (!online_) return io_status::disk_failed;
    if (!extent_ok(offset, out.size())) return io_status::out_of_range;
    if (!extent_readable(offset, out.size())) {
        return io_status::unreadable_sector;
    }
    std::memcpy(out.data(), data_.data() + offset, out.size());
    reads_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(out.size(), std::memory_order_relaxed);
    return io_status::ok;
}

io_status vdisk::write(std::size_t offset, std::span<const std::byte> in) {
    if (!online_) return io_status::disk_failed;
    if (!extent_ok(offset, in.size())) return io_status::out_of_range;
    std::memcpy(data_.data() + offset, in.data(), in.size());
    // A rewrite heals fully covered latent sectors (like a real remap).
    if (!bad_sectors_.empty() && !in.empty()) {
        const std::size_t first_full = (offset + sector_size_ - 1) / sector_size_;
        const std::size_t end_full = (offset + in.size()) / sector_size_;
        for (std::size_t sec = first_full; sec < end_full;) {
            auto it = bad_sectors_.lower_bound(sec);
            if (it == bad_sectors_.end() || it->first >= end_full) break;
            sec = it->first + 1;
            bad_sectors_.erase(it);
        }
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(in.size(), std::memory_order_relaxed);
    return io_status::ok;
}

void vdisk::replace() {
    data_.zero();
    bad_sectors_.clear();
    online_ = true;
}

void vdisk::inject_latent_error(std::size_t offset, std::size_t len) {
    LIBERATION_EXPECTS(extent_ok(offset, len) && len > 0);
    const std::size_t first = offset / sector_size_;
    const std::size_t last = (offset + len - 1) / sector_size_;
    for (std::size_t s = first; s <= last; ++s) bad_sectors_[s] = true;
}

std::size_t vdisk::inject_silent_corruption(std::size_t offset, std::size_t len,
                                            util::xoshiro256& rng) {
    LIBERATION_EXPECTS(extent_ok(offset, len) && len > 0);
    // Flip 1..8 random bytes in the extent; guarantee a real change.
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t pos = offset + rng.next_below(len);
        std::byte flip{0};
        while (flip == std::byte{0}) {
            flip = static_cast<std::byte>(rng.next() & 0xff);
        }
        data_.data()[pos] ^= flip;
    }
    return flips;
}

}  // namespace liberation::raid
