#include "liberation/raid/vdisk.hpp"

#include <cstring>

#include "liberation/util/assert.hpp"

namespace liberation::raid {

vdisk::vdisk(std::uint32_t id, std::size_t capacity, std::size_t sector_size)
    : id_(id), sector_size_(sector_size), data_(capacity) {
    LIBERATION_EXPECTS(capacity > 0 && sector_size > 0);
}

bool vdisk::extent_readable(std::size_t offset, std::size_t len) const {
    if (bad_sectors_.empty()) return true;
    const std::size_t first = offset / sector_size_;
    const std::size_t last = (offset + len - 1) / sector_size_;
    auto it = bad_sectors_.lower_bound(first);
    return it == bad_sectors_.end() || it->first > last;
}

bool vdisk::take_transient_fault(io_kind kind) {
    if (!faults_armed_.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(fault_mutex_);
    const bool is_read = kind == io_kind::read;
    std::uint64_t& ops = is_read ? read_ops_ : write_ops_;
    auto& schedule = is_read ? scheduled_read_faults_ : scheduled_write_faults_;
    const double rate = is_read ? read_rate_ : write_rate_;

    const std::uint64_t op = ops++;
    if (auto it = schedule.find(op); it != schedule.end()) {
        schedule.erase(it);
        return true;
    }
    if (rate > 0.0 && fault_rng_ && fault_rng_->next_double() < rate) {
        return true;
    }
    return false;
}

void vdisk::set_transient_fault_rates(double read_rate, double write_rate,
                                      std::uint64_t seed) {
    LIBERATION_EXPECTS(read_rate >= 0.0 && read_rate <= 1.0 &&
                       write_rate >= 0.0 && write_rate <= 1.0);
    std::lock_guard<std::mutex> lock(fault_mutex_);
    read_rate_ = read_rate;
    write_rate_ = write_rate;
    fault_rng_.emplace(seed);
    faults_armed_.store(true, std::memory_order_relaxed);
}

void vdisk::schedule_transient_fault(io_kind kind, std::uint64_t ops_from_now) {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (kind == io_kind::read) {
        scheduled_read_faults_.insert(read_ops_ + ops_from_now);
    } else {
        scheduled_write_faults_.insert(write_ops_ + ops_from_now);
    }
    faults_armed_.store(true, std::memory_order_relaxed);
}

void vdisk::clear_transient_faults() {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    read_rate_ = 0.0;
    write_rate_ = 0.0;
    fault_rng_.reset();
    scheduled_read_faults_.clear();
    scheduled_write_faults_.clear();
    faults_armed_.store(false, std::memory_order_relaxed);
}

std::uint64_t vdisk::take_service_latency() {
    if (!latency_armed_.load(std::memory_order_relaxed)) return 0;
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (!latency_.enabled()) return 0;
    const std::uint64_t op = latency_ops_++;
    std::uint64_t us = latency_.base_us;
    if (latency_.jitter_us > 0 && latency_rng_) {
        us += latency_rng_->next_below(latency_.jitter_us);
    }
    switch (latency_.kind) {
        case latency_profile::shape::ramp: {
            std::uint64_t ramp = latency_.ramp_us_per_op * op;
            if (latency_.ramp_cap_us > 0 && ramp > latency_.ramp_cap_us) {
                ramp = latency_.ramp_cap_us;
            }
            us += ramp;
            break;
        }
        case latency_profile::shape::intermittent_stall:
            if (latency_.stall_every > 0 &&
                (op + 1) % latency_.stall_every == 0) {
                us += latency_.stall_us;
            }
            break;
        case latency_profile::shape::constant:
        case latency_profile::shape::none:
            break;
    }
    return us;
}

void vdisk::set_latency_profile(const latency_profile& profile,
                                std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    latency_ = profile;
    latency_rng_.emplace(seed);
    latency_ops_ = 0;
    latency_armed_.store(profile.enabled(), std::memory_order_relaxed);
}

void vdisk::clear_latency_profile() {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    latency_ = latency_profile{};
    latency_rng_.reset();
    latency_ops_ = 0;
    latency_armed_.store(false, std::memory_order_relaxed);
}

io_status vdisk::read(std::size_t offset, std::span<std::byte> out,
                      std::uint64_t* service_us) {
    if (service_us != nullptr) *service_us = 0;
    if (!online()) return io_status::disk_failed;
    if (!extent_ok(offset, out.size())) return io_status::out_of_range;
    // Taken whether or not the caller wants the number: the latency
    // stream must advance identically on every path touching the medium.
    const std::uint64_t svc = take_service_latency();
    if (service_us != nullptr) *service_us = svc;
    if (take_transient_fault(io_kind::read)) {
        transient_reads_.fetch_add(1, std::memory_order_relaxed);
        return io_status::transient_error;
    }
    if (!extent_readable(offset, out.size())) {
        return io_status::unreadable_sector;
    }
    std::memcpy(out.data(), data_.data() + offset, out.size());
    reads_.fetch_add(1, std::memory_order_relaxed);
    bytes_read_.fetch_add(out.size(), std::memory_order_relaxed);
    return io_status::ok;
}

io_status vdisk::write(std::size_t offset, std::span<const std::byte> in,
                       std::uint64_t* service_us) {
    if (service_us != nullptr) *service_us = 0;
    if (!online()) return io_status::disk_failed;
    if (!extent_ok(offset, in.size())) return io_status::out_of_range;
    const std::uint64_t svc = take_service_latency();
    if (service_us != nullptr) *service_us = svc;
    if (take_transient_fault(io_kind::write)) {
        transient_writes_.fetch_add(1, std::memory_order_relaxed);
        return io_status::transient_error;  // nothing hit the medium
    }
    std::memcpy(data_.data() + offset, in.data(), in.size());
    if (sink_) sink_(offset, in);
    // A rewrite heals fully covered latent sectors (like a real remap).
    if (!bad_sectors_.empty() && !in.empty()) {
        const std::size_t first_full = (offset + sector_size_ - 1) / sector_size_;
        const std::size_t end_full = (offset + in.size()) / sector_size_;
        for (std::size_t sec = first_full; sec < end_full;) {
            auto it = bad_sectors_.lower_bound(sec);
            if (it == bad_sectors_.end() || it->first >= end_full) break;
            sec = it->first + 1;
            bad_sectors_.erase(it);
        }
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    bytes_written_.fetch_add(in.size(), std::memory_order_relaxed);
    return io_status::ok;
}

void vdisk::replace() {
    data_.zero();
    // The slot's backing file (if any) must track the blank medium, or a
    // remount would resurrect the dead disk's stale bytes.
    if (sink_) sink_(0, std::span<const std::byte>(data_.data(), data_.size()));
    bad_sectors_.clear();
    clear_transient_faults();
    clear_latency_profile();  // fresh hardware is fast hardware
    online_.store(true, std::memory_order_release);
}

void vdisk::peek(std::size_t offset, std::span<std::byte> out) const {
    LIBERATION_EXPECTS(extent_ok(offset, out.size()));
    std::memcpy(out.data(), data_.data() + offset, out.size());
}

void vdisk::poke(std::size_t offset, std::span<const std::byte> in) {
    LIBERATION_EXPECTS(extent_ok(offset, in.size()));
    std::memcpy(data_.data() + offset, in.data(), in.size());
}

void vdisk::inject_latent_error(std::size_t offset, std::size_t len) {
    LIBERATION_EXPECTS(extent_ok(offset, len) && len > 0);
    const std::size_t first = offset / sector_size_;
    const std::size_t last = (offset + len - 1) / sector_size_;
    for (std::size_t s = first; s <= last; ++s) bad_sectors_[s] = true;
}

std::size_t vdisk::inject_silent_corruption(std::size_t offset, std::size_t len,
                                            util::xoshiro256& rng) {
    LIBERATION_EXPECTS(extent_ok(offset, len) && len > 0);
    // Flip 1..8 random bytes in the extent; guarantee a real change.
    const std::size_t flips = 1 + rng.next_below(8);
    for (std::size_t f = 0; f < flips; ++f) {
        const std::size_t pos = offset + rng.next_below(len);
        std::byte flip{0};
        while (flip == std::byte{0}) {
            flip = static_cast<std::byte>(rng.next() & 0xff);
        }
        data_.data()[pos] ^= flip;
    }
    // Rot lives on the medium, so it persists like any other bytes.
    if (sink_) {
        sink_(offset, std::span<const std::byte>(data_.data() + offset, len));
    }
    return flips;
}

}  // namespace liberation::raid
