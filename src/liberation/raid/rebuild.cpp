#include "liberation/raid/rebuild.hpp"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <vector>

#include "liberation/aio/stripe_io.hpp"
#include "liberation/core/hybrid_rebuild.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/util/timer.hpp"

namespace liberation::raid {

rebuild_result rebuild_stripe_range(raid6_array& array,
                                    std::span<const std::uint32_t> replaced_disks,
                                    std::size_t first, std::size_t last,
                                    util::thread_pool* pool) {
    LIBERATION_EXPECTS(!replaced_disks.empty() && replaced_disks.size() <= 2);
    LIBERATION_EXPECTS(first <= last && last <= array.map().stripes());
    rebuild_result result;
    util::stopwatch timer;
    // Every rebuild window — background batches and operator-driven full
    // rebuilds alike — lands one sample here (and a trace span when on).
    obs::timed_span window_span(
        array.obs(),
        &array.obs().metrics().get_histogram("raid_rebuild_window_ns"),
        "rebuild.window", "rebuild");

    std::atomic<std::size_t> rebuilt{0};
    std::atomic<std::size_t> columns{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::size_t> failed{0};
    std::atomic<std::size_t> first_failed{rebuild_result::npos};

    const auto note_failure = [&](std::size_t s) {
        failed.fetch_add(1, std::memory_order_relaxed);
        std::size_t cur = first_failed.load(std::memory_order_relaxed);
        while (s < cur && !first_failed.compare_exchange_weak(
                              cur, s, std::memory_order_relaxed)) {
        }
    };

    // Which codeword columns live on the replaced disks in this stripe?
    // The replaced disks read back zeros (blank), so they are not
    // reported as unavailable — they are unioned in as logical
    // erasures. (During background hot-spare rebuild the array masks
    // them as `rebuilding`, in which case they are already erased.)
    const auto target_columns = [&](std::size_t s) {
        std::vector<std::uint32_t> cols;
        for (const std::uint32_t d : replaced_disks) {
            cols.push_back(array.map().column_of_disk(s, d));
        }
        std::sort(cols.begin(), cols.end());
        return cols;
    };

    // A journaled stripe may be torn (interrupted write): its parity
    // cannot be trusted, so reconstructing a data column from it would
    // write garbage to the replacement. Count the stripe as failed —
    // recover_write_hole() must re-sync it first. (Parity-only
    // erasures are safe: they are re-encoded from data.) Torn stripes
    // also skip checksum classification: their mismatches are
    // half-landed updates, which resync owns.
    const auto rebuild_torn = [&](std::size_t s) {
        codes::stripe_buffer buf = array.make_stripe_buffer();
        std::vector<std::uint32_t> erased;
        if (!array.load_stripe(s, buf.view(), erased)) {
            note_failure(s);
            return;
        }
        for (const std::uint32_t c : target_columns(s)) {
            if (std::find(erased.begin(), erased.end(), c) == erased.end()) {
                erased.push_back(c);
            }
        }
        std::sort(erased.begin(), erased.end());
        if (erased.size() > 2) {
            note_failure(s);
            return;
        }
        for (const std::uint32_t c : erased) {
            if (c < array.map().k()) {
                note_failure(s);
                return;
            }
        }
        array.code().decode(buf.view(), erased);
        if (!array.store_columns(s, buf.view(), erased)) {
            note_failure(s);
            return;
        }
        rebuilt.fetch_add(1, std::memory_order_relaxed);
        columns.fetch_add(erased.size(), std::memory_order_relaxed);
        bytes.fetch_add(static_cast<std::uint64_t>(erased.size()) *
                            array.map().strip_size(),
                        std::memory_order_relaxed);
    };

    // Shared commit tail of the verified rebuild: reconstructed targets
    // plus healed survivors go back to disk, or the stripe is failed.
    const auto commit_recovered = [&](std::size_t s,
                                      const codes::stripe_view& v,
                                      const raid6_array::stripe_recovery& rec) {
        if (!rec.ok) {
            note_failure(s);
            return;
        }
        std::vector<std::uint32_t> commit = rec.erased;
        for (const std::uint32_t c : rec.healed) {
            if (std::find(commit.begin(), commit.end(), c) == commit.end()) {
                commit.push_back(c);
            }
        }
        std::sort(commit.begin(), commit.end());
        // The verification sweep that re-checked every reconstruction
        // captured its checksum words; the commit hands them over so the
        // integrity layer installs instead of re-reading each strip.
        const std::uint32_t n = array.map().n();
        std::vector<const std::uint32_t*> crc_ptrs;
        if (rec.crc_valid.size() == n && n != 0) {
            const std::size_t bps = rec.crcs.size() / n;
            crc_ptrs.assign(n, nullptr);
            for (std::uint32_t c = 0; c < n; ++c) {
                if (rec.crc_valid[c] != 0) {
                    crc_ptrs[c] = rec.crcs.data() + c * bps;
                }
            }
        }
        if (!array.store_columns(s, v, commit,
                                 crc_ptrs.empty() ? nullptr
                                                  : crc_ptrs.data())) {
            note_failure(s);
            return;
        }
        rebuilt.fetch_add(1, std::memory_order_relaxed);
        columns.fetch_add(commit.size(), std::memory_order_relaxed);
        bytes.fetch_add(
            static_cast<std::uint64_t>(commit.size()) * array.map().strip_size(),
            std::memory_order_relaxed);
    };

    // Verified rebuild: checksum-suspect survivors are demoted to
    // erasures alongside the rebuild targets, and every reconstructed
    // strip is re-verified against its stored checksum before it is
    // committed to the replacement (load_stripe_verified does both —
    // a rebuild must never lay corrupt bytes onto fresh hardware).
    const auto rebuild_stripe = [&](std::size_t s) {
        if (array.journal().is_dirty(s)) {
            rebuild_torn(s);
            return;
        }
        codes::stripe_buffer buf = array.make_stripe_buffer();
        const std::vector<std::uint32_t> cols = target_columns(s);
        const raid6_array::stripe_recovery rec =
            array.load_stripe_verified(s, buf.view(), /*writeback=*/false,
                                       cols);
        commit_recovered(s, buf.view(), rec);
    };

    if (pool != nullptr) {
        pool->parallel_for(last - first,
                           [&](std::size_t i) { rebuild_stripe(first + i); });
    } else if (array.io_queue_depth() > 1) {
        // Pipelined rebuild slice: batched multi-stripe reads through the
        // submission queue (one merged transfer per surviving disk per
        // window), long-lived slot buffers instead of a fresh
        // stripe_buffer per stripe, and no reads at all for the rebuild
        // targets. Torn stripes fall back to the per-stripe raw path.
        aio::stripe_loader loader(array.aio_engine(), array.map());
        std::vector<std::uint32_t> cols_scratch;
        loader.run(
            first, last,
            /*skip_stripe=*/
            [&](std::size_t s) { return array.journal().is_dirty(s); },
            /*skip_column=*/
            [&](std::size_t s, std::uint32_t col) {
                for (const std::uint32_t d : replaced_disks) {
                    if (array.map().column_of_disk(s, d) == col) return true;
                }
                return false;
            },
            /*on_skipped=*/rebuild_torn,
            /*process=*/
            [&](std::size_t s, const codes::stripe_view& v,
                std::vector<io_status>& statuses) {
                cols_scratch.clear();
                for (const std::uint32_t d : replaced_disks) {
                    cols_scratch.push_back(array.map().column_of_disk(s, d));
                }
                std::sort(cols_scratch.begin(), cols_scratch.end());
                const raid6_array::stripe_recovery rec =
                    array.verify_loaded_stripe(s, v, /*writeback=*/false,
                                               cols_scratch,
                                               /*trust_parity=*/true,
                                               std::move(statuses));
                commit_recovered(s, v, rec);
            });
    } else {
        for (std::size_t s = first; s < last; ++s) rebuild_stripe(s);
    }

    result.stripes_rebuilt = rebuilt.load();
    result.columns_rebuilt = columns.load();
    result.bytes_written = bytes.load();
    result.stripes_failed = failed.load();
    result.first_failed_stripe = first_failed.load();
    result.seconds = timer.seconds();
    result.success = result.stripes_failed == 0;
    return result;
}

rebuild_result rebuild_disks(raid6_array& array,
                             std::span<const std::uint32_t> replaced_disks,
                             util::thread_pool* pool) {
    return rebuild_stripe_range(array, replaced_disks, 0,
                                array.map().stripes(), pool);
}

rebuild_result fail_replace_rebuild(raid6_array& array, std::uint32_t disk,
                                    util::thread_pool* pool) {
    array.fail_disk(disk);
    array.replace_disk(disk);
    const std::uint32_t disks[] = {disk};
    return rebuild_disks(array, disks, pool);
}

rebuild_result rebuild_single_disk_hybrid(raid6_array& array,
                                          std::uint32_t disk) {
    rebuild_result result;
    util::stopwatch timer;
    const auto& map = array.map();
    const auto& code = array.code();
    const core::geometry& g = code.geom();
    const std::size_t elem = map.element_size();

    // Plans depend only on which codeword column is missing; memoize the
    // k possible data-column plans across stripes.
    std::vector<core::hybrid_plan> plans(map.k());
    std::vector<bool> planned(map.k(), false);

    codes::stripe_buffer buf = array.make_stripe_buffer();
    util::aligned_buffer elem_buf(elem);

    const auto note_failure = [&](std::size_t s) {
        ++result.stripes_failed;
        result.first_failed_stripe =
            std::min(result.first_failed_stripe, s);
    };

    for (std::size_t s = 0; s < map.stripes(); ++s) {
        const std::uint32_t col = map.column_of_disk(s, disk);
        const std::uint32_t rebuilt_cols[] = {col};
        // A journaled stripe may be torn: both rebuild paths below read
        // parity (the hybrid plan explicitly, the parity re-encode when a
        // data column is also erased), so defer to recover_write_hole().
        const bool torn = array.journal().is_dirty(s);

        if (col >= map.k()) {
            if (torn) {
                // Parity column of a torn stripe: re-encode from a full
                // data read (raw — torn mismatches are not corruption). An
                // unreadable data column would need the untrusted parity
                // to reconstruct, so the stripe is refused instead.
                std::vector<std::uint32_t> erased;
                if (!array.load_stripe(s, buf.view(), erased)) {
                    note_failure(s);
                    continue;
                }
                if (std::find(erased.begin(), erased.end(), col) ==
                    erased.end()) {
                    erased.push_back(col);
                }
                std::sort(erased.begin(), erased.end());
                const bool needs_data =
                    std::any_of(erased.begin(), erased.end(),
                                [&](std::uint32_t c) { return c < map.k(); });
                if (erased.size() > 2 || needs_data) {
                    note_failure(s);
                    continue;
                }
                code.decode(buf.view(), erased);
            } else {
                // Parity column: full checksum-verified recovery (corrupt
                // survivors are localized and healed, the re-encoded
                // parity is verified before the store below commits it).
                const std::uint32_t extra[] = {col};
                const raid6_array::stripe_recovery rec =
                    array.load_stripe_verified(s, buf.view(),
                                               /*writeback=*/true, extra);
                if (!rec.ok) {
                    note_failure(s);
                    continue;
                }
            }
        } else {
            if (torn) {
                note_failure(s);
                continue;
            }
            if (!planned[col]) {
                plans[col] = core::plan_hybrid_rebuild(g, col);
                planned[col] = true;
            }
            const auto& plan = plans[col];
            bool ok = true;
            bool suspect = false;
            for (const auto& r : plan.reads) {
                const strip_location loc = map.locate(s, r.col);
                const std::size_t off =
                    loc.offset + static_cast<std::size_t>(r.row) * elem;
                if (array.disk_read(loc.disk, off, elem_buf.span()) !=
                    io_status::ok) {
                    ok = false;
                    break;
                }
                // Feeding a silently corrupt survivor element into the
                // hybrid XOR chain would reconstruct garbage; divert to
                // the full-stripe path, which can localize the damage.
                if (!array.integrity(loc.disk).verify(off, elem_buf.span())) {
                    suspect = true;
                    break;
                }
                std::memcpy(buf.view().element(r.row, r.col), elem_buf.data(),
                            elem);
            }
            if (!ok) {
                note_failure(s);
                continue;
            }
            if (!suspect) {
                core::rebuild_column_hybrid(buf.view(), g, plans[col]);
                // Verify the reconstruction against the *target's* stored
                // checksums before committing it to the replacement.
                const strip_location tloc = map.locate(s, col);
                if (!array.integrity(tloc.disk).verify(tloc.offset,
                                                       buf.view().strip(col))) {
                    suspect = true;
                }
            }
            if (suspect) {
                // Checksum disagreement somewhere in the chain: let the
                // checksum-first classification sort out whether data or
                // metadata is the damaged side (it repairs either).
                const std::uint32_t extra[] = {col};
                const raid6_array::stripe_recovery rec =
                    array.load_stripe_verified(s, buf.view(),
                                               /*writeback=*/true, extra);
                if (!rec.ok) {
                    note_failure(s);
                    continue;
                }
            }
        }

        if (!array.store_columns(s, buf.view(), rebuilt_cols)) {
            note_failure(s);
            continue;
        }
        ++result.stripes_rebuilt;
        ++result.columns_rebuilt;
        result.bytes_written += map.strip_size();
    }
    result.seconds = timer.seconds();
    result.success = result.stripes_failed == 0;
    return result;
}

}  // namespace liberation::raid
