// Chaos campaign: a seeded, replayable end-to-end torture test of the
// fault-tolerant array.
//
// The campaign interleaves a random read/write workload with every fault
// class the simulator models — baseline transient error rates on all
// disks, a "storm" that makes one disk flaky enough for the health monitor
// to trip it, an injected fail-stop, latent sector errors, and a power
// loss mid-write — while hot spares absorb the failures and the background
// rebuild races foreground I/O. Every read is checked against a shadow
// copy, so any stripe the optimal Liberation encode/decode paths mishandle
// under compound faults shows up as a mismatch.
//
// Everything is driven by one seed through util::xoshiro256: the same
// config replays the same campaign bit-for-bit (the harness's replay
// contract, and what makes test_chaos deterministic).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "liberation/obs/slo.hpp"
#include "liberation/raid/array.hpp"

namespace liberation::raid {

/// Fault events are *armed* at these op indices and fire at the first
/// subsequent op where the array is quiet (no failed disk, no rebuild in
/// flight), so compound events stay within RAID-6's two-erasure budget.
struct chaos_event_plan {
    std::size_t fail_stop_at_op = 2000;     ///< fail-stop a random disk
    std::size_t health_storm_at_op = 5000;  ///< make one disk trip-worthy
    std::size_t power_loss_at_op = 8000;    ///< cut power mid-write
    /// Inject a latent sector error every N ops (0 = never).
    std::size_t latent_error_every = 1500;
    /// Silently flip bits in a random data strip every N ops (0 = never).
    /// Fires while the array is healthy, degraded, or rebuilding — any
    /// state with at most one masked column, so a flip stays inside the
    /// two-erasure decode budget.
    std::size_t corrupt_every = 900;
    /// Corrupt a stored checksum (the integrity *metadata*) every N ops
    /// (0 = never): exercises the damaged-checksum-domain fallback.
    std::size_t corrupt_integrity_every = 3500;
    /// When the fail-stop fires, also corrupt a survivor column of a
    /// not-yet-rebuilt stripe and immediately scrub: proves the
    /// checksum-first scrubber repairs corruption on degraded stripes the
    /// parity cross-check scrubber had to skip.
    bool degraded_scrub = true;
    /// Fail-slow injection (>= ops disables): at the first quiet op a
    /// random online disk is armed with a seeded constant latency profile
    /// — correct bytes, pathological timing. Requires
    /// array_config::latency.hedged_reads for the array to react (hedge,
    /// then quarantine); without it the disk just drags the clock.
    std::size_t fail_slow_at_op = SIZE_MAX;
    /// The straggler recovers (profile cleared) at this op: quarantine
    /// probes must then un-quarantine it (>= ops = never recovers).
    std::size_t fail_slow_recover_at_op = SIZE_MAX;
    /// Injected service time of the fail-slow disk, microseconds.
    std::uint64_t fail_slow_base_us = 20'000;
};

/// Kill-and-remount persistence phases. When enabled, the campaign runs
/// its array file-backed (persist::create_array in `dir`) and "kills the
/// process" at the planned points: the array object is destroyed with NO
/// unmount — exactly the state an abrupt process death leaves on disk —
/// then mount_array() reassembles it from the backing files and the run
/// continues against the same shadow copy. Covers crashes mid-write
/// (armed like a power loss, so the intent log has an unreplayed entry),
/// mid-rebuild (the remount must resume from the persisted watermark),
/// and "mid-scrub" (silent corruption is on the medium and not yet
/// healed; the post-remount scrub must still find and repair it).
struct chaos_persist_plan {
    bool enabled = false;
    std::string dir;         ///< store directory; files survive every kill
    bool sync_meta = false;  ///< fdatasync superblock persists
    /// Op indices; >= ops disables the phase. Armed events fire at the
    /// first quiet op, the mid-rebuild kill at the first op with a
    /// rebuild actually in flight.
    std::size_t kill_mid_write_at_op = SIZE_MAX;
    std::size_t kill_mid_rebuild_at_op = SIZE_MAX;
    std::size_t kill_mid_scrub_at_op = SIZE_MAX;
};

struct chaos_config {
    std::uint64_t seed = 42;
    std::size_t ops = 10'000;
    array_config array{};  ///< must include hot spares for the fault plan
    chaos_persist_plan persist{};
    /// Baseline transient error rates armed on every disk.
    double transient_read_rate = 0.01;
    double transient_write_rate = 0.005;
    /// Transient rates of the health-storm disk (should exhaust retries).
    double storm_rate = 0.9;
    /// Largest single read/write (0 = twice the stripe data size).
    std::size_t max_io_bytes = 0;
    /// Fraction of ops that are writes, in tenths (4 = 40%).
    std::uint32_t write_tenths = 4;
    chaos_event_plan events{};
    /// Enable the array's span tracer for the run; the resulting Chrome
    /// trace JSON lands in chaos_report::trace_json. Off by default: the
    /// per-thread rings keep only the freshest window anyway, and tests
    /// that replay campaigns don't want the extra stores.
    bool trace = false;
    /// Service-level objectives asserted by the verdict. Evaluated every
    /// `slo_every_ops` workload ops and once at the end, over a sliding
    /// `slo_window_ns` window of the array's (virtual) clock; a violation
    /// at *any* evaluation fails the run even if the tail recovered.
    /// Empty = no SLO gate.
    std::vector<obs::slo_objective> slo{};
    std::uint64_t slo_window_ns = 1'000'000'000;
    std::size_t slo_every_ops = 256;
    /// Optional event logger (the CLI passes a printf; tests leave null).
    std::function<void(const std::string&)> log{};
};

/// A chaos_config whose array/health/event parameters are tuned so the
/// default plan (trip + fail-stop + power loss, two hot spares) runs
/// cleanly: baseline transients stay below trip thresholds, the storm
/// crosses them.
[[nodiscard]] chaos_config default_chaos_config(std::uint64_t seed,
                                                std::size_t ops = 10'000);

/// Wall-clock seconds spent in each campaign phase, in execution order.
/// (Wall clock, not the array's virtual clock: phases are harness-side
/// work — the workload loop, scrubs, the verify sweep — not single I/Os.)
struct chaos_phase_times {
    double fill_s = 0.0;          ///< initial fill + shadow copy
    double workload_s = 0.0;      ///< the op loop, fault injection included
    double settle_s = 0.0;        ///< rebuild drain, write-hole recovery, resilver
    double settle_scrub_s = 0.0;  ///< the post-settle healing scrub
    double final_verify_s = 0.0;  ///< shadow compare + per-stripe checksum sweep
    double final_scrub_s = 0.0;   ///< the parity-consistency scrub
    /// Time inside mount_array() across every kill-and-remount, intent
    /// replay included (0 unless chaos_persist_plan::enabled).
    double mount_replay_s = 0.0;

    [[nodiscard]] double total_s() const noexcept {
        return fill_s + workload_s + settle_s + settle_scrub_s +
               final_verify_s + final_scrub_s + mount_replay_s;
    }
};

struct chaos_report {
    std::size_t ops = 0;
    std::size_t reads = 0;
    std::size_t writes = 0;
    // ---- correctness ----
    std::size_t mismatches = 0;      ///< reads that disagreed with the shadow
    std::size_t failed_reads = 0;    ///< read() returned false (data loss)
    std::size_t failed_writes = 0;   ///< write() returned false
    std::size_t final_torn = 0;      ///< stripes with inconsistent parity at end
    std::size_t final_degraded = 0;  ///< stripes with unavailable columns at end
    std::size_t final_unrecovered = 0;  ///< stripes beyond two erasures at end
    std::size_t scrub_uncorrectable = 0;
    // ---- events that actually fired ----
    std::size_t injected_fail_stops = 0;
    std::size_t latent_errors_injected = 0;
    std::size_t corruptions_injected = 0;  ///< silent data bit-flips
    std::size_t integrity_corruptions_injected = 0;  ///< checksum flips
    std::size_t power_losses = 0;
    std::size_t resynced_stripes = 0;  ///< write-hole recovery after power loss
    std::size_t resilver_healed = 0;
    /// Corrupt columns the mid-campaign scrub repaired on *degraded*
    /// stripes (the checksum-first capability under test).
    std::size_t degraded_scrub_repairs = 0;
    /// Injected corruption the settle scrub healed (strips the workload
    /// never re-read, including parity strips).
    std::size_t settle_scrub_healed = 0;
    /// Columns that still failed their stored checksum in the final sweep.
    std::size_t final_checksum_bad = 0;
    std::uint64_t health_trips = 0;
    std::uint64_t spares_promoted = 0;
    std::uint64_t rebuilds_completed = 0;
    // ---- fail-slow tolerance (chaos_event_plan::fail_slow_at_op) ----
    std::size_t fail_slow_injected = 0;  ///< latency profiles armed
    std::uint64_t deadline_exceeded = 0;
    std::uint64_t hedged_reads = 0;
    std::uint64_t hedge_wins = 0;
    std::uint64_t slow_trips = 0;
    std::uint64_t slow_recoveries = 0;
    // ---- kill-and-remount persistence phases (chaos_persist_plan) ----
    std::size_t kills = 0;           ///< process deaths simulated
    std::size_t remounts = 0;        ///< successful mount_array() reassemblies
    std::size_t mount_failures = 0;  ///< remounts that refused to assemble
    std::size_t mount_intent_replayed = 0;  ///< stripes re-synced during mounts
    std::size_t stale_disks_kicked = 0;     ///< members demoted at mount
    std::size_t rebuilds_resumed = 0;  ///< rebuilds continued from watermarks
    /// Pre-kill silent corruption the post-remount scrub repaired (the
    /// mid-scrub crash point: damage must survive the remount round-trip
    /// and still be healed).
    std::size_t remount_scrub_repairs = 0;
    array_stats stats{};       ///< final array counters
    io_policy_stats io{};      ///< final retry-policy counters
    chaos_phase_times phases{};
    /// Observability captures, taken just before run_chaos_campaign
    /// returns (the campaign array is local to the run, so its hub dies
    /// with it): the full Prometheus exposition, every latency-histogram
    /// snapshot by name, and — when chaos_config::trace — the Chrome
    /// trace JSON.
    std::string metrics_text;
    std::vector<std::pair<std::string, obs::latency_histogram::snapshot_t>>
        histograms;
    std::string trace_json;
    /// SLO verdict: true when no configured objective ever violated
    /// (vacuously true with no objectives). slo_text is the engine's
    /// final per-objective rendering.
    bool slo_ok = true;
    std::string slo_text;
    bool success = false;

    /// The acceptance predicate: zero corruption AND the full fault plan
    /// exercised (>= 1 trip, fail-stop, power loss, promotion, rebuild).
    /// "Zero corruption" now includes the integrity invariant — no host
    /// read ever returned bytes that fail their checksum, every stored
    /// checksum verifies at the end — and operational health: no read was
    /// abandoned as unrecoverable and no rebuild session stalled.
    [[nodiscard]] bool clean() const noexcept {
        return mismatches == 0 && failed_reads == 0 && failed_writes == 0 &&
               final_torn == 0 && final_degraded == 0 &&
               final_unrecovered == 0 && scrub_uncorrectable == 0 &&
               final_checksum_bad == 0 && stats.reads_unrecoverable == 0 &&
               stats.rebuild_sessions_stalled == 0;
    }
};

/// Run one campaign. Deterministic: equal configs produce equal reports.
chaos_report run_chaos_campaign(const chaos_config& cfg);

}  // namespace liberation::raid
