// Background scrubber: walks every stripe, verifies parity consistency and
// repairs silent single-column corruption in place using the error-
// correction algorithm of DESIGN.md Section 5 (the capability the paper
// claims in Section I).
#pragma once

#include <cstdint>

#include "liberation/raid/array.hpp"

namespace liberation::raid {

struct scrub_summary {
    std::size_t stripes_scanned = 0;
    std::size_t clean = 0;
    std::size_t repaired_data = 0;
    std::size_t repaired_parity = 0;
    std::size_t uncorrectable = 0;
    std::size_t skipped_degraded = 0;  ///< stripes with failed/unreadable columns
};

/// Scrub the whole array. Degraded stripes (any unavailable column) are
/// skipped — scrubbing requires all columns, since a decode would mask the
/// corruption. Repairs are written back to the disks.
scrub_summary scrub_array(raid6_array& array);

}  // namespace liberation::raid
