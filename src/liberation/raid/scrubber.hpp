// Background scrubber: walks every stripe, verifies parity consistency and
// repairs silent single-column corruption in place using the error-
// correction algorithm of DESIGN.md Section 5 (the capability the paper
// claims in Section I).
#pragma once

#include <cstdint>

#include "liberation/raid/array.hpp"

namespace liberation::raid {

struct scrub_summary {
    std::size_t stripes_scanned = 0;
    std::size_t clean = 0;
    std::size_t repaired_data = 0;
    std::size_t repaired_parity = 0;
    std::size_t uncorrectable = 0;
    /// Stripes with a failed/latent/rebuilding column: skipped until the
    /// disk is rebuilt or the sector healed (resilver).
    std::size_t skipped_degraded = 0;
    /// Stripes whose only unavailability was a transient error that
    /// survived the retry budget: worth re-scrubbing soon, the data on the
    /// medium is intact.
    std::size_t skipped_transient = 0;
    /// Columns unreadable due to latent sector errors across the scan.
    std::size_t latent_columns = 0;
    /// Columns that failed transiently (after retries) across the scan.
    std::size_t transient_columns = 0;
};

/// Scrub the whole array. Degraded stripes (any unavailable column) are
/// skipped — scrubbing requires all columns, since a decode would mask the
/// corruption. The summary distinguishes stripes skipped for transient
/// errors (retry later, medium intact) from real degradation (failed disk,
/// latent sector, rebuilding spare). Repairs are written back to the disks.
scrub_summary scrub_array(raid6_array& array);

}  // namespace liberation::raid
