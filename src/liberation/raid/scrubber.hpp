// Background scrubber: walks every stripe checksum-first — the per-disk
// integrity regions pinpoint corrupt columns with no single-corruption
// assumption, the optimal decoder repairs up to two of them per stripe,
// and *degraded* stripes (up to two unavailable columns) are scrubbed
// rather than skipped. The Section-5 parity cross-check survives as a
// defense-in-depth fallback for damage the checksum layer cannot see
// (e.g. corruption that also struck the stored checksum in a matching
// way).
#pragma once

#include <cstdint>

#include "liberation/raid/array.hpp"

namespace liberation::raid {

struct scrub_summary {
    std::size_t stripes_scanned = 0;
    std::size_t clean = 0;
    std::size_t repaired_data = 0;
    std::size_t repaired_parity = 0;
    /// Columns whose *stored checksum* was the damaged side (the bytes on
    /// disk were corroborated by parity); the metadata was refreshed.
    std::size_t repaired_metadata = 0;
    std::size_t uncorrectable = 0;
    /// Stripes with more than two unavailable columns (beyond the decode
    /// budget): skipped until a disk is rebuilt or a sector healed.
    std::size_t skipped_degraded = 0;
    /// Stripes whose only unavailability was a transient error that
    /// survived the retry budget: worth re-scrubbing soon, the data on the
    /// medium is intact.
    std::size_t skipped_transient = 0;
    /// Stripes still journaled in the intent log: their checksum
    /// mismatches are half-landed updates, not corruption —
    /// recover_write_hole() owns that classification.
    std::size_t skipped_torn = 0;
    /// Degraded stripes (1-2 unavailable columns) that were still scrubbed
    /// — the capability the checksum layer adds over parity cross-checking,
    /// which needs every column present.
    std::size_t degraded_scrubbed = 0;
    /// Corrupt columns repaired on those degraded stripes.
    std::size_t repaired_on_degraded = 0;
    /// Columns whose bytes failed their stored checksum across the scan
    /// (before classification into data vs metadata damage).
    std::size_t checksum_mismatch_columns = 0;
    /// Repairs made by the parity cross-check fallback on stripes whose
    /// checksums were clean — i.e. damage the checksum domain could not
    /// see, such as a stripe left torn without being journaled. (Subset of
    /// repaired_data/repaired_parity.)
    std::size_t parity_fallback_repairs = 0;
    /// Columns unreadable due to latent sector errors across the scan.
    std::size_t latent_columns = 0;
    /// Columns that failed transiently (after retries) across the scan.
    std::size_t transient_columns = 0;
    /// Bytes whose checksum verification rode the single fused traversal
    /// of the checksum-first sweep. Each scanned byte is charged ONCE
    /// here — the old accounting implicitly charged a CRC pass and a
    /// parity cross-check pass separately, double-counting scrub
    /// throughput on clean stripes. Mirrored to the obs counter
    /// raid_scrub_bytes_single_pass_total.
    std::size_t scrub_bytes_single_pass = 0;
    /// Extra bytes traversed by the parity cross-check fallback (stripes
    /// whose checksums were clean; defense-in-depth only). Kept separate
    /// so dashboards can still see the fallback's cost without it
    /// inflating the scrub-throughput figure above.
    std::size_t scrub_bytes_crosscheck = 0;
};

/// Scrub the whole array: checksum-first classification, decode-based
/// repair of up to two bad columns per stripe (including on degraded
/// stripes), metadata repair when the stored checksum is the damaged side,
/// and a parity cross-check fallback on stripes the checksum layer calls
/// clean. Repairs are written back to the disks. Runs regardless of
/// array_config::verify_reads — scrubbing is the patrol that catches what
/// the read path never touches.
scrub_summary scrub_array(raid6_array& array);

}  // namespace liberation::raid
