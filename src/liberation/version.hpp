// Library version, for downstream feature checks.
#pragma once

#define LIBERATION_VERSION_MAJOR 1
#define LIBERATION_VERSION_MINOR 0
#define LIBERATION_VERSION_PATCH 0

namespace liberation {

struct version_info {
    int major;
    int minor;
    int patch;
};

[[nodiscard]] constexpr version_info version() noexcept {
    return {LIBERATION_VERSION_MAJOR, LIBERATION_VERSION_MINOR,
            LIBERATION_VERSION_PATCH};
}

}  // namespace liberation
