// Internal kernel table shared between the per-ISA translation units and
// the dispatcher (xorops.cpp). Not installed; include only from within
// src/liberation/xorops/.
//
// Each ISA tier provides one table of region kernels. All kernels accept
// arbitrary (unaligned) pointers and any byte count: vector bodies run
// full-width over the bulk of the region and delegate the sub-chunk
// remainder to the portable word/byte tail below, so a tier is correct for
// every (offset, size) combination, not just the aligned library buffers.
//
// Alias contract (all tiers): dst may coincide *exactly* with any source
// of a single xor_many pass — every source chunk is loaded before the
// destination chunk is stored. Partially overlapping regions are
// unsupported, as in the public API.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace liberation::xorops::detail {

/// Sources fused per destination pass. Eight keeps 9 concurrent memory
/// streams (8 reads + 1 write) — comfortably within x86/arm L1 fill-buffer
/// budgets — and bounds the accumulator register pressure of the vector
/// bodies. The public xor_many() splits larger fan-ins into passes of at
/// most this many sources.
inline constexpr std::size_t max_fan_in = 8;

struct kernel_table {
    const char* name;  ///< impl_name() string, e.g. "avx2"

    /// dst ^= src.
    void (*xor_into)(std::byte* dst, const std::byte* src,
                     std::size_t n) noexcept;

    /// dst = a ^ b.
    void (*xor2)(std::byte* dst, const std::byte* a, const std::byte* b,
                 std::size_t n) noexcept;

    /// Fused reduction of one pass: dst (^)= srcs[0] ^ ... ^ srcs[m-1],
    /// reading each source once and writing dst once. `acc` selects ^= vs =.
    /// Requires 1 <= m <= max_fan_in.
    void (*xor_many)(std::byte* dst, const std::byte* const* srcs,
                     std::size_t m, std::size_t n, bool acc) noexcept;

    /// xor_many with non-temporal (cache-bypassing) destination stores,
    /// for destinations too large to profit from cache residency. Same
    /// contract as xor_many; issues a store fence before returning. Null
    /// in tiers without a streaming-store path (scalar, neon) — the
    /// dispatcher falls back to xor_many.
    void (*xor_many_nt)(std::byte* dst, const std::byte* const* srcs,
                        std::size_t m, std::size_t n, bool acc) noexcept;

    /// Fused CRC sweeps. All three produce the raw (inverted-state) CRC32C
    /// lane chains of one region per the integrity::crc32c_lane_bytes()
    /// split — lanes[0]/[1]/[2] cover [0,L)/[L,2L)/[2L,n), each chain
    /// seeded 0 — so the caller can stitch them into the region's standard
    /// CRC with a crc32c_lane_combiner. Every tier computes identical lane
    /// values; only the sweep speed differs.

    /// Checksum-only sweep of [src, src+n).
    void (*crc3)(const std::byte* src, std::size_t n,
                 std::uint32_t lanes[3]) noexcept;

    /// dst = src, checksumming the bytes inside the copy traversal.
    void (*copy_crc3)(std::byte* dst, const std::byte* src, std::size_t n,
                      std::uint32_t lanes[3]) noexcept;

    /// One xor_many pass whose final *stored* destination bytes are
    /// checksummed while still register/L1-hot. Same contract as xor_many.
    void (*xor_many_crc3)(std::byte* dst, const std::byte* const* srcs,
                          std::size_t m, std::size_t n, bool acc,
                          std::uint32_t lanes[3]) noexcept;
};

const kernel_table& scalar_table() noexcept;
#if defined(__x86_64__) || defined(__i386__)
const kernel_table& avx2_table() noexcept;
const kernel_table& avx512_table() noexcept;
#endif
#if defined(__aarch64__)
const kernel_table& neon_table() noexcept;
#endif

/// Portable remainder: dst (^)= XOR of m sources over [off, n). Word steps
/// then bytes; used by every vector body for the last < chunk bytes, and by
/// the scalar tier for whole small regions.
inline void xor_many_tail(std::byte* dst, const std::byte* const* srcs,
                          std::size_t m, std::size_t off, std::size_t n,
                          bool acc) noexcept {
    std::size_t i = off;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t v;
        if (acc) {
            std::memcpy(&v, dst + i, 8);
        } else {
            std::memcpy(&v, srcs[0] + i, 8);
        }
        for (std::size_t s = acc ? 0 : 1; s < m; ++s) {
            std::uint64_t w;
            std::memcpy(&w, srcs[s] + i, 8);
            v ^= w;
        }
        std::memcpy(dst + i, &v, 8);
    }
    for (; i < n; ++i) {
        std::byte v = acc ? dst[i] : srcs[0][i];
        for (std::size_t s = acc ? 0 : 1; s < m; ++s) v ^= srcs[s][i];
        dst[i] = v;
    }
}

}  // namespace liberation::xorops::detail
