// Word-wise XOR/copy kernels over byte regions, with per-thread operation
// counters and runtime-dispatched SIMD implementations.
//
// These kernels are the universal currency of XOR-based erasure coding: one
// region corresponds to one array-code *element* (paper Section II-A), and
// one region-XOR corresponds to one "XOR" in the paper's complexity
// accounting. The counters therefore drive every complexity figure
// (Figs. 5-8, Table I) with zero extra plumbing: run the real encoder on
// tiny regions and read the counters.
//
// Counting convention (matches the paper and Jerasure): combining n source
// regions into a destination costs n-1 XORs — the first write is a *copy*
// and is counted separately. The fused reduction preserves this exactly:
// xor_many over n sources counts 1 copy + n-1 XORs, and xor_many_into over
// n sources counts n XORs, regardless of how many memory passes the
// dispatched kernel actually performs. Complexity numbers are therefore
// invariant under fusing and across implementations. Counter updates are
// one thread-local increment per region op, which is noise next to even an
// 8-byte memory op, so the same code path serves both the complexity and
// the throughput benches.
//
// Dispatch (same pattern as integrity/crc32c.hpp): the best tier the CPU
// supports — AVX-512F, AVX2, NEON, or the portable scalar body — is
// selected once, lazily, via CPUID/baseline-ISA detection. The environment
// variable LIBERATION_XOR_IMPL ("scalar", "avx2", "avx512", "neon", or
// "auto") overrides the choice at startup; an unavailable or unknown value
// falls back to auto-detection, and "scalar" is the guaranteed-available
// forced-software fallback. Tests pin tiers with force_impl().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace liberation::xorops {

/// Per-thread region-operation counters.
struct op_stats {
    std::uint64_t xor_ops = 0;    ///< dst ^= src region operations
    std::uint64_t copy_ops = 0;   ///< dst = src region operations
    std::uint64_t bytes_xored = 0;
    std::uint64_t bytes_copied = 0;

    void reset() noexcept { *this = op_stats{}; }
};

/// Mutable reference to this thread's counters.
op_stats& counters() noexcept;

/// Convenience: reset this thread's counters.
void reset_counters() noexcept;

// ---------------------------------------------------------------------------
// Implementation dispatch.

enum class xor_impl : std::uint8_t { scalar, avx2, avx512, neon };

/// The implementation every kernel currently dispatches to.
[[nodiscard]] xor_impl active_impl() noexcept;

/// True when this build/CPU can run the given tier (scalar always can).
[[nodiscard]] bool impl_available(xor_impl impl) noexcept;

/// Tier the library would pick on its own: the LIBERATION_XOR_IMPL
/// override when set and available, else the best tier the CPU supports.
[[nodiscard]] xor_impl default_impl() noexcept;

/// Pin the dispatched tier (benches sweep tiers; tests cross-validate).
/// An unavailable tier degrades to default_impl().
void force_impl(xor_impl impl) noexcept;

/// Lower-case tier name ("scalar", "avx2", "avx512", "neon").
[[nodiscard]] const char* impl_name(xor_impl impl) noexcept;

/// Parse an impl name as accepted by LIBERATION_XOR_IMPL. Returns true and
/// sets `out` on success ("auto" maps to the auto-detected best tier).
[[nodiscard]] bool impl_from_name(const char* name, xor_impl& out) noexcept;

/// Sources fused per destination memory pass by xor_many (larger fan-ins
/// are split into passes of at most this many sources).
[[nodiscard]] std::size_t max_fused_sources() noexcept;

// ---------------------------------------------------------------------------
// Non-temporal store routing. Destinations at or above the threshold are
// written with streaming (cache-bypassing) stores when the dispatched tier
// has a streaming path and the operation is a single fused pass — beyond
// the last-level cache a regular store costs a hidden read-for-ownership
// of every destination line, which streaming stores elide. Multi-pass
// reductions never stream (later passes re-read the destination), and the
// fused XOR+CRC kernels never stream (the checksum sweep wants the block
// cache-hot).

/// Current byte threshold for streaming stores. 0 = disabled. Defaults to
/// the LLC size when the OS reports one (else 32 MiB); the environment
/// variable LIBERATION_XOR_NT_THRESHOLD overrides the default at startup
/// (plain bytes, or with a K/M/G suffix; "0" disables).
[[nodiscard]] std::size_t nt_threshold() noexcept;

/// Override the streaming-store threshold at runtime (0 disables).
void set_nt_threshold(std::size_t bytes) noexcept;

// ---------------------------------------------------------------------------
// Fused XOR+CRC32C traversals. Each call covers one region of n bytes
// treated as n/block fixed-size checksum blocks (n must be a multiple of
// block): the region is produced / read exactly as by the non-fused
// kernel, and crcs[b] receives the standard CRC32C (seed 0) of block b —
// computed inside the same traversal while the bytes are register/L1-hot,
// so the separate checksum pass over cold memory disappears. Counters are
// incremented exactly as for the equivalent non-fused kernel; the CRC
// work is never counted (complexity figures are invariant under fusing).

/// Checksum-only sweep: crcs[b] = CRC32C of block b of [src, src+n).
void crc32c_blocks(const std::byte* src, std::size_t n, std::size_t block,
                   std::uint32_t* crcs) noexcept;

/// dst = src with per-block CRCs of the bytes moved (one copy op).
void copy_crc32c_blocks(std::byte* dst, const std::byte* src, std::size_t n,
                        std::size_t block, std::uint32_t* crcs) noexcept;

/// xor_many with per-block CRCs of the final destination bytes (counted
/// as 1 copy + nsrc-1 XORs, like xor_many). Requires nsrc >= 1.
void xor_many_crc32c_blocks(std::byte* dst, const std::byte* const* srcs,
                            std::size_t nsrc, std::size_t n, std::size_t block,
                            std::uint32_t* crcs) noexcept;

/// xor_many_into with per-block CRCs of the final destination bytes
/// (counted as nsrc XORs). nsrc == 0 degenerates to a checksum-only sweep
/// of the existing destination contents.
void xor_many_into_crc32c_blocks(std::byte* dst, const std::byte* const* srcs,
                                 std::size_t nsrc, std::size_t n,
                                 std::size_t block,
                                 std::uint32_t* crcs) noexcept;

// ---------------------------------------------------------------------------
// Region kernels. All accept arbitrary (sector-offset) pointers and any
// size. Regions must not partially overlap; dst may coincide exactly with
// a source (for xor_many/xor_many_into: only sources among the first
// max_fused_sources(), i.e. within the first fused pass).

/// dst[i] ^= src[i] for n bytes (dst == src is allowed and zeroes dst).
void xor_into(std::byte* dst, const std::byte* src, std::size_t n) noexcept;

/// dst[i] = a[i] ^ b[i] for n bytes (counted as one XOR op).
void xor2(std::byte* dst, const std::byte* a, const std::byte* b,
          std::size_t n) noexcept;

/// Fused multi-source reduction: dst = srcs[0] ^ ... ^ srcs[nsrc-1],
/// reading each source once and writing dst once per fused pass instead of
/// performing nsrc read-modify-write round trips. Requires nsrc >= 1
/// (nsrc == 1 degenerates to a copy). Counted as 1 copy + nsrc-1 XORs —
/// identical to the copy + xor_into chain it replaces.
void xor_many(std::byte* dst, const std::byte* const* srcs, std::size_t nsrc,
              std::size_t n) noexcept;

/// Accumulating variant: dst ^= srcs[0] ^ ... ^ srcs[nsrc-1]. nsrc == 0 is
/// a no-op. Counted as nsrc XORs.
void xor_many_into(std::byte* dst, const std::byte* const* srcs,
                   std::size_t nsrc, std::size_t n) noexcept;

/// Scatter one source into several destinations: dsts[d] ^= src for all
/// ndst destinations (the parity-update pattern — one delta, 2-3 parity
/// targets). Counted as ndst XORs.
void xor_broadcast(std::byte* const* dsts, std::size_t ndst,
                   const std::byte* src, std::size_t n) noexcept;

/// dst = src (counted as one copy op).
void copy(std::byte* dst, const std::byte* src, std::size_t n) noexcept;

/// dst = 0 (not counted; used only for buffer setup).
void zero(std::byte* dst, std::size_t n) noexcept;

/// True iff the n-byte region is all zero bytes.
[[nodiscard]] bool is_zero(const std::byte* src, std::size_t n) noexcept;

/// True iff two n-byte regions are byte-identical.
[[nodiscard]] bool equal(const std::byte* a, const std::byte* b,
                         std::size_t n) noexcept;

// Span-flavoured overloads (sizes must match; checked).
void xor_into(std::span<std::byte> dst, std::span<const std::byte> src) noexcept;
void xor2(std::span<std::byte> dst, std::span<const std::byte> a,
          std::span<const std::byte> b) noexcept;
void copy(std::span<std::byte> dst, std::span<const std::byte> src) noexcept;

/// RAII scope that zeroes this thread's counters on entry and exposes the
/// delta on request — keeps complexity measurements exception-safe.
class counting_scope {
public:
    counting_scope() noexcept { reset_counters(); }
    counting_scope(const counting_scope&) = delete;
    counting_scope& operator=(const counting_scope&) = delete;
    ~counting_scope() = default;

    [[nodiscard]] op_stats snapshot() const noexcept { return counters(); }
    [[nodiscard]] std::uint64_t xors() const noexcept {
        return counters().xor_ops;
    }
    [[nodiscard]] std::uint64_t copies() const noexcept {
        return counters().copy_ops;
    }
};

/// RAII scope that pins a tier and restores the previous one on exit —
/// keeps tier-sweeping tests and benches exception-safe.
class impl_scope {
public:
    explicit impl_scope(xor_impl impl) noexcept : prev_(active_impl()) {
        force_impl(impl);
    }
    impl_scope(const impl_scope&) = delete;
    impl_scope& operator=(const impl_scope&) = delete;
    ~impl_scope() { force_impl(prev_); }

private:
    xor_impl prev_;
};

}  // namespace liberation::xorops
