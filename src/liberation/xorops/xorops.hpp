// Word-wise XOR/copy kernels over byte regions, with per-thread operation
// counters.
//
// These kernels are the universal currency of XOR-based erasure coding: one
// region corresponds to one array-code *element* (paper Section II-A), and
// one region-XOR corresponds to one "XOR" in the paper's complexity
// accounting. The counters therefore drive every complexity figure
// (Figs. 5-8, Table I) with zero extra plumbing: run the real encoder on
// tiny regions and read the counters.
//
// Counting convention (matches the paper and Jerasure): combining n source
// regions into a destination costs n-1 XORs — the first write is a *copy*
// and is counted separately. Counter updates are one thread-local increment
// per region op, which is noise next to even an 8-byte memory op, so the
// same code path serves both the complexity and the throughput benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace liberation::xorops {

/// Per-thread region-operation counters.
struct op_stats {
    std::uint64_t xor_ops = 0;    ///< dst ^= src region operations
    std::uint64_t copy_ops = 0;   ///< dst = src region operations
    std::uint64_t bytes_xored = 0;
    std::uint64_t bytes_copied = 0;

    void reset() noexcept { *this = op_stats{}; }
};

/// Mutable reference to this thread's counters.
op_stats& counters() noexcept;

/// Convenience: reset this thread's counters.
void reset_counters() noexcept;

/// dst[i] ^= src[i] for n bytes. Regions must not partially overlap
/// (dst == src is allowed and zeroes dst).
void xor_into(std::byte* dst, const std::byte* src, std::size_t n) noexcept;

/// dst[i] = a[i] ^ b[i] for n bytes (counted as one XOR op).
void xor2(std::byte* dst, const std::byte* a, const std::byte* b,
          std::size_t n) noexcept;

/// dst = src (counted as one copy op).
void copy(std::byte* dst, const std::byte* src, std::size_t n) noexcept;

/// dst = 0 (not counted; used only for buffer setup).
void zero(std::byte* dst, std::size_t n) noexcept;

/// True iff the n-byte region is all zero bytes.
[[nodiscard]] bool is_zero(const std::byte* src, std::size_t n) noexcept;

/// True iff two n-byte regions are byte-identical.
[[nodiscard]] bool equal(const std::byte* a, const std::byte* b,
                         std::size_t n) noexcept;

// Span-flavoured overloads (sizes must match; checked).
void xor_into(std::span<std::byte> dst, std::span<const std::byte> src) noexcept;
void xor2(std::span<std::byte> dst, std::span<const std::byte> a,
          std::span<const std::byte> b) noexcept;
void copy(std::span<std::byte> dst, std::span<const std::byte> src) noexcept;

/// RAII scope that zeroes this thread's counters on entry and exposes the
/// delta on request — keeps complexity measurements exception-safe.
class counting_scope {
public:
    counting_scope() noexcept { reset_counters(); }
    counting_scope(const counting_scope&) = delete;
    counting_scope& operator=(const counting_scope&) = delete;
    ~counting_scope() = default;

    [[nodiscard]] op_stats snapshot() const noexcept { return counters(); }
    [[nodiscard]] std::uint64_t xors() const noexcept {
        return counters().xor_ops;
    }
    [[nodiscard]] std::uint64_t copies() const noexcept {
        return counters().copy_ops;
    }
};

}  // namespace liberation::xorops
