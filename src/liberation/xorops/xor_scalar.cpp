// Scalar (portable) XOR kernel tier: 4x-unrolled 64-bit words through
// memcpy loads, which compilers lower to plain loads/stores on every
// supported target and auto-vectorize to the baseline vector ISA under
// -O2/-O3. This tier is the forced-software fallback
// (LIBERATION_XOR_IMPL=scalar) and the correctness reference the vector
// tiers are tested against.
#include "liberation/integrity/crc32c.hpp"
#include "liberation/xorops/xor_kernels.hpp"

namespace liberation::xorops::detail {

namespace {

void xor_into_scalar(std::byte* dst, const std::byte* src,
                     std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        std::uint64_t d0, d1, d2, d3, s0, s1, s2, s3;
        std::memcpy(&d0, dst + i, 8);
        std::memcpy(&d1, dst + i + 8, 8);
        std::memcpy(&d2, dst + i + 16, 8);
        std::memcpy(&d3, dst + i + 24, 8);
        std::memcpy(&s0, src + i, 8);
        std::memcpy(&s1, src + i + 8, 8);
        std::memcpy(&s2, src + i + 16, 8);
        std::memcpy(&s3, src + i + 24, 8);
        d0 ^= s0;
        d1 ^= s1;
        d2 ^= s2;
        d3 ^= s3;
        std::memcpy(dst + i, &d0, 8);
        std::memcpy(dst + i + 8, &d1, 8);
        std::memcpy(dst + i + 16, &d2, 8);
        std::memcpy(dst + i + 24, &d3, 8);
    }
    const std::byte* srcs[1] = {src};
    xor_many_tail(dst, srcs, 1, i, n, /*acc=*/true);
}

void xor2_scalar(std::byte* dst, const std::byte* a, const std::byte* b,
                 std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        std::uint64_t a0, a1, a2, a3, b0, b1, b2, b3;
        std::memcpy(&a0, a + i, 8);
        std::memcpy(&a1, a + i + 8, 8);
        std::memcpy(&a2, a + i + 16, 8);
        std::memcpy(&a3, a + i + 24, 8);
        std::memcpy(&b0, b + i, 8);
        std::memcpy(&b1, b + i + 8, 8);
        std::memcpy(&b2, b + i + 16, 8);
        std::memcpy(&b3, b + i + 24, 8);
        a0 ^= b0;
        a1 ^= b1;
        a2 ^= b2;
        a3 ^= b3;
        std::memcpy(dst + i, &a0, 8);
        std::memcpy(dst + i + 8, &a1, 8);
        std::memcpy(dst + i + 16, &a2, 8);
        std::memcpy(dst + i + 24, &a3, 8);
    }
    const std::byte* srcs[2] = {a, b};
    xor_many_tail(dst, srcs, 2, i, n, /*acc=*/false);
}

void xor_many_scalar(std::byte* dst, const std::byte* const* srcs,
                     std::size_t m, std::size_t n, bool acc) noexcept {
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        std::uint64_t a0, a1, a2, a3;
        std::size_t s;
        if (acc) {
            std::memcpy(&a0, dst + i, 8);
            std::memcpy(&a1, dst + i + 8, 8);
            std::memcpy(&a2, dst + i + 16, 8);
            std::memcpy(&a3, dst + i + 24, 8);
            s = 0;
        } else {
            std::memcpy(&a0, srcs[0] + i, 8);
            std::memcpy(&a1, srcs[0] + i + 8, 8);
            std::memcpy(&a2, srcs[0] + i + 16, 8);
            std::memcpy(&a3, srcs[0] + i + 24, 8);
            s = 1;
        }
        for (; s < m; ++s) {
            std::uint64_t b0, b1, b2, b3;
            std::memcpy(&b0, srcs[s] + i, 8);
            std::memcpy(&b1, srcs[s] + i + 8, 8);
            std::memcpy(&b2, srcs[s] + i + 16, 8);
            std::memcpy(&b3, srcs[s] + i + 24, 8);
            a0 ^= b0;
            a1 ^= b1;
            a2 ^= b2;
            a3 ^= b3;
        }
        std::memcpy(dst + i, &a0, 8);
        std::memcpy(dst + i + 8, &a1, 8);
        std::memcpy(dst + i + 16, &a2, 8);
        std::memcpy(dst + i + 24, &a3, 8);
    }
    xor_many_tail(dst, srcs, m, i, n, acc);
}

// The forced-software tier pairs the portable XOR bodies with the
// portable slice-by-8 CRC kernel, so LIBERATION_XOR_IMPL=scalar exercises
// a fully instruction-set-independent fused path. Lane values are defined
// by the split rule alone, so they match the hardware tiers bit for bit.

void crc3_scalar(const std::byte* src, std::size_t n,
                 std::uint32_t lanes[3]) noexcept {
    const std::size_t lane = integrity::crc32c_lane_bytes(n);
    lanes[0] = integrity::crc32c_raw_software(0, src, lane);
    lanes[1] = integrity::crc32c_raw_software(0, src + lane, lane);
    lanes[2] =
        integrity::crc32c_raw_software(0, src + 2 * lane, n - 2 * lane);
}

void copy_crc3_scalar(std::byte* dst, const std::byte* src, std::size_t n,
                      std::uint32_t lanes[3]) noexcept {
    std::memcpy(dst, src, n);
    crc3_scalar(src, n, lanes);
}

void xor_many_crc3_scalar(std::byte* dst, const std::byte* const* srcs,
                          std::size_t m, std::size_t n, bool acc,
                          std::uint32_t lanes[3]) noexcept {
    xor_many_scalar(dst, srcs, m, n, acc);
    crc3_scalar(dst, n, lanes);
}

}  // namespace

const kernel_table& scalar_table() noexcept {
    static constexpr kernel_table table{
        "scalar",          xor_into_scalar,  xor2_scalar,
        xor_many_scalar,   /*xor_many_nt=*/nullptr,
        crc3_scalar,       copy_crc3_scalar, xor_many_crc3_scalar};
    return table;
}

}  // namespace liberation::xorops::detail
