#include "liberation/xorops/xorops.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xor_kernels.hpp"

namespace liberation::xorops {

namespace {

thread_local op_stats g_stats;

const detail::kernel_table& table_for(xor_impl impl) noexcept {
    switch (impl) {
#if defined(__x86_64__) || defined(__i386__)
        case xor_impl::avx2:
            return detail::avx2_table();
        case xor_impl::avx512:
            return detail::avx512_table();
#endif
#if defined(__aarch64__)
        case xor_impl::neon:
            return detail::neon_table();
#endif
        default:
            return detail::scalar_table();
    }
}

bool detect_available(xor_impl impl) noexcept {
    switch (impl) {
        case xor_impl::scalar:
            return true;
        case xor_impl::avx2:
#if defined(__x86_64__) || defined(__i386__)
            return __builtin_cpu_supports("avx2") != 0;
#else
            return false;
#endif
        case xor_impl::avx512:
#if defined(__x86_64__) || defined(__i386__)
            return __builtin_cpu_supports("avx512f") != 0;
#else
            return false;
#endif
        case xor_impl::neon:
#if defined(__aarch64__)
            return true;  // ASIMD is aarch64 baseline
#else
            return false;
#endif
    }
    return false;
}

xor_impl best_available() noexcept {
    if (detect_available(xor_impl::avx512)) return xor_impl::avx512;
    if (detect_available(xor_impl::avx2)) return xor_impl::avx2;
    if (detect_available(xor_impl::neon)) return xor_impl::neon;
    return xor_impl::scalar;
}

xor_impl startup_impl() noexcept {
    const char* env = std::getenv("LIBERATION_XOR_IMPL");
    if (env != nullptr && *env != '\0') {
        xor_impl requested;
        if (!impl_from_name(env, requested)) {
            std::fprintf(stderr,
                         "liberation: unknown LIBERATION_XOR_IMPL '%s' "
                         "(expected scalar/avx2/avx512/neon/auto); "
                         "auto-detecting\n",
                         env);
        } else if (!detect_available(requested)) {
            std::fprintf(stderr,
                         "liberation: LIBERATION_XOR_IMPL=%s not supported "
                         "by this CPU/build; auto-detecting\n",
                         env);
        } else {
            return requested;
        }
    }
    return best_available();
}

// Dispatch state. CPU detection must not run during static initialization
// (other translation units' constructors may XOR), so the atomic is a lazy
// magic static — the same pattern as the CRC32C dispatcher.
std::atomic<xor_impl>& impl_slot() noexcept {
    static std::atomic<xor_impl> slot{startup_impl()};
    return slot;
}

const detail::kernel_table& table() noexcept {
    return table_for(impl_slot().load(std::memory_order_relaxed));
}

}  // namespace

op_stats& counters() noexcept { return g_stats; }

void reset_counters() noexcept { g_stats.reset(); }

xor_impl active_impl() noexcept {
    return impl_slot().load(std::memory_order_relaxed);
}

bool impl_available(xor_impl impl) noexcept {
    static const bool available[4] = {
        detect_available(xor_impl::scalar), detect_available(xor_impl::avx2),
        detect_available(xor_impl::avx512), detect_available(xor_impl::neon)};
    const auto idx = static_cast<std::size_t>(impl);
    return idx < 4 && available[idx];
}

xor_impl default_impl() noexcept {
    static const xor_impl choice = startup_impl();
    return choice;
}

void force_impl(xor_impl impl) noexcept {
    if (!impl_available(impl)) impl = default_impl();
    impl_slot().store(impl, std::memory_order_relaxed);
}

const char* impl_name(xor_impl impl) noexcept {
    switch (impl) {
        case xor_impl::scalar:
            return "scalar";
        case xor_impl::avx2:
            return "avx2";
        case xor_impl::avx512:
            return "avx512";
        case xor_impl::neon:
            return "neon";
    }
    return "scalar";
}

bool impl_from_name(const char* name, xor_impl& out) noexcept {
    if (name == nullptr) return false;
    const auto is = [name](const char* s) noexcept {
        return std::strcmp(name, s) == 0;
    };
    if (is("scalar") || is("software") || is("sw")) {
        out = xor_impl::scalar;
    } else if (is("avx2")) {
        out = xor_impl::avx2;
    } else if (is("avx512") || is("avx-512") || is("avx512f")) {
        out = xor_impl::avx512;
    } else if (is("neon") || is("asimd")) {
        out = xor_impl::neon;
    } else if (is("auto")) {
        out = best_available();
    } else {
        return false;
    }
    return true;
}

std::size_t max_fused_sources() noexcept { return detail::max_fan_in; }

void xor_into(std::byte* dst, const std::byte* src, std::size_t n) noexcept {
    table().xor_into(dst, src, n);
    ++g_stats.xor_ops;
    g_stats.bytes_xored += n;
}

void xor2(std::byte* dst, const std::byte* a, const std::byte* b,
          std::size_t n) noexcept {
    table().xor2(dst, a, b, n);
    ++g_stats.xor_ops;
    g_stats.bytes_xored += n;
}

void xor_many(std::byte* dst, const std::byte* const* srcs, std::size_t nsrc,
              std::size_t n) noexcept {
    LIBERATION_EXPECTS(nsrc >= 1);
    const detail::kernel_table& t = table();
    std::size_t pass = std::min(nsrc, detail::max_fan_in);
    t.xor_many(dst, srcs, pass, n, /*acc=*/false);
    for (std::size_t off = pass; off < nsrc; off += pass) {
        pass = std::min(nsrc - off, detail::max_fan_in);
        t.xor_many(dst, srcs + off, pass, n, /*acc=*/true);
    }
    ++g_stats.copy_ops;
    g_stats.bytes_copied += n;
    g_stats.xor_ops += nsrc - 1;
    g_stats.bytes_xored += (nsrc - 1) * n;
}

void xor_many_into(std::byte* dst, const std::byte* const* srcs,
                   std::size_t nsrc, std::size_t n) noexcept {
    if (nsrc == 0) return;
    const detail::kernel_table& t = table();
    for (std::size_t off = 0; off < nsrc;) {
        const std::size_t pass = std::min(nsrc - off, detail::max_fan_in);
        t.xor_many(dst, srcs + off, pass, n, /*acc=*/true);
        off += pass;
    }
    g_stats.xor_ops += nsrc;
    g_stats.bytes_xored += nsrc * n;
}

void xor_broadcast(std::byte* const* dsts, std::size_t ndst,
                   const std::byte* src, std::size_t n) noexcept {
    // One pass per destination; src stays cache-hot after the first, so a
    // dedicated multi-store kernel would only save redundant L1 hits.
    const detail::kernel_table& t = table();
    for (std::size_t d = 0; d < ndst; ++d) t.xor_into(dsts[d], src, n);
    g_stats.xor_ops += ndst;
    g_stats.bytes_xored += ndst * n;
}

void copy(std::byte* dst, const std::byte* src, std::size_t n) noexcept {
    std::memcpy(dst, src, n);
    ++g_stats.copy_ops;
    g_stats.bytes_copied += n;
}

void zero(std::byte* dst, std::size_t n) noexcept { std::memset(dst, 0, n); }

bool is_zero(const std::byte* src, std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        std::uint64_t w0, w1, w2, w3;
        std::memcpy(&w0, src + i, 8);
        std::memcpy(&w1, src + i + 8, 8);
        std::memcpy(&w2, src + i + 16, 8);
        std::memcpy(&w3, src + i + 24, 8);
        if ((w0 | w1 | w2 | w3) != 0) return false;
    }
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, src + i, 8);
        if (w != 0) return false;
    }
    for (; i < n; ++i) {
        if (src[i] != std::byte{0}) return false;
    }
    return true;
}

bool equal(const std::byte* a, const std::byte* b, std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        std::uint64_t a0, a1, a2, a3, b0, b1, b2, b3;
        std::memcpy(&a0, a + i, 8);
        std::memcpy(&a1, a + i + 8, 8);
        std::memcpy(&a2, a + i + 16, 8);
        std::memcpy(&a3, a + i + 24, 8);
        std::memcpy(&b0, b + i, 8);
        std::memcpy(&b1, b + i + 8, 8);
        std::memcpy(&b2, b + i + 16, 8);
        std::memcpy(&b3, b + i + 24, 8);
        if (((a0 ^ b0) | (a1 ^ b1) | (a2 ^ b2) | (a3 ^ b3)) != 0) return false;
    }
    for (; i + 8 <= n; i += 8) {
        std::uint64_t x, y;
        std::memcpy(&x, a + i, 8);
        std::memcpy(&y, b + i, 8);
        if (x != y) return false;
    }
    for (; i < n; ++i) {
        if (a[i] != b[i]) return false;
    }
    return true;
}

void xor_into(std::span<std::byte> dst,
              std::span<const std::byte> src) noexcept {
    LIBERATION_EXPECTS(dst.size() == src.size());
    xor_into(dst.data(), src.data(), dst.size());
}

void xor2(std::span<std::byte> dst, std::span<const std::byte> a,
          std::span<const std::byte> b) noexcept {
    LIBERATION_EXPECTS(dst.size() == a.size() && dst.size() == b.size());
    xor2(dst.data(), a.data(), b.data(), dst.size());
}

void copy(std::span<std::byte> dst, std::span<const std::byte> src) noexcept {
    LIBERATION_EXPECTS(dst.size() == src.size());
    copy(dst.data(), src.data(), dst.size());
}

}  // namespace liberation::xorops
