#include "liberation/xorops/xorops.hpp"

#include <cstring>

#include "liberation/util/assert.hpp"

namespace liberation::xorops {

namespace {

thread_local op_stats g_stats;

// Word-at-a-time XOR loop. Alignment: all library buffers come from
// aligned_buffer (64-byte), but the kernels must stay correct for arbitrary
// pointers (RAID sector offsets), so unaligned heads/tails use memcpy-based
// word loads, which compilers lower to plain loads on x86/arm.
inline void xor_words(std::byte* dst, const std::byte* src,
                      std::size_t n) noexcept {
    std::size_t i = 0;
    // 4x unrolled 64-bit body; auto-vectorizes under -O2/-O3.
    for (; i + 32 <= n; i += 32) {
        std::uint64_t d0, d1, d2, d3, s0, s1, s2, s3;
        std::memcpy(&d0, dst + i, 8);
        std::memcpy(&d1, dst + i + 8, 8);
        std::memcpy(&d2, dst + i + 16, 8);
        std::memcpy(&d3, dst + i + 24, 8);
        std::memcpy(&s0, src + i, 8);
        std::memcpy(&s1, src + i + 8, 8);
        std::memcpy(&s2, src + i + 16, 8);
        std::memcpy(&s3, src + i + 24, 8);
        d0 ^= s0;
        d1 ^= s1;
        d2 ^= s2;
        d3 ^= s3;
        std::memcpy(dst + i, &d0, 8);
        std::memcpy(dst + i + 8, &d1, 8);
        std::memcpy(dst + i + 16, &d2, 8);
        std::memcpy(dst + i + 24, &d3, 8);
    }
    for (; i + 8 <= n; i += 8) {
        std::uint64_t d, s;
        std::memcpy(&d, dst + i, 8);
        std::memcpy(&s, src + i, 8);
        d ^= s;
        std::memcpy(dst + i, &d, 8);
    }
    for (; i < n; ++i) {
        dst[i] ^= src[i];
    }
}

inline void xor2_words(std::byte* dst, const std::byte* a, const std::byte* b,
                       std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        std::uint64_t x, y;
        std::memcpy(&x, a + i, 8);
        std::memcpy(&y, b + i, 8);
        x ^= y;
        std::memcpy(dst + i, &x, 8);
    }
    for (; i < n; ++i) {
        dst[i] = a[i] ^ b[i];
    }
}

}  // namespace

op_stats& counters() noexcept { return g_stats; }

void reset_counters() noexcept { g_stats.reset(); }

void xor_into(std::byte* dst, const std::byte* src, std::size_t n) noexcept {
    xor_words(dst, src, n);
    ++g_stats.xor_ops;
    g_stats.bytes_xored += n;
}

void xor2(std::byte* dst, const std::byte* a, const std::byte* b,
          std::size_t n) noexcept {
    xor2_words(dst, a, b, n);
    ++g_stats.xor_ops;
    g_stats.bytes_xored += n;
}

void copy(std::byte* dst, const std::byte* src, std::size_t n) noexcept {
    std::memcpy(dst, src, n);
    ++g_stats.copy_ops;
    g_stats.bytes_copied += n;
}

void zero(std::byte* dst, std::size_t n) noexcept { std::memset(dst, 0, n); }

bool is_zero(const std::byte* src, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) {
        if (src[i] != std::byte{0}) return false;
    }
    return true;
}

bool equal(const std::byte* a, const std::byte* b, std::size_t n) noexcept {
    return std::memcmp(a, b, n) == 0;
}

void xor_into(std::span<std::byte> dst,
              std::span<const std::byte> src) noexcept {
    LIBERATION_EXPECTS(dst.size() == src.size());
    xor_into(dst.data(), src.data(), dst.size());
}

void xor2(std::span<std::byte> dst, std::span<const std::byte> a,
          std::span<const std::byte> b) noexcept {
    LIBERATION_EXPECTS(dst.size() == a.size() && dst.size() == b.size());
    xor2(dst.data(), a.data(), b.data(), dst.size());
}

void copy(std::span<std::byte> dst, std::span<const std::byte> src) noexcept {
    LIBERATION_EXPECTS(dst.size() == src.size());
    copy(dst.data(), src.data(), dst.size());
}

}  // namespace liberation::xorops
