#include "liberation/xorops/xorops.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "liberation/integrity/crc32c.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/xorops/xor_kernels.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace liberation::xorops {

namespace {

thread_local op_stats g_stats;

const detail::kernel_table& table_for(xor_impl impl) noexcept {
    switch (impl) {
#if defined(__x86_64__) || defined(__i386__)
        case xor_impl::avx2:
            return detail::avx2_table();
        case xor_impl::avx512:
            return detail::avx512_table();
#endif
#if defined(__aarch64__)
        case xor_impl::neon:
            return detail::neon_table();
#endif
        default:
            return detail::scalar_table();
    }
}

bool detect_available(xor_impl impl) noexcept {
    switch (impl) {
        case xor_impl::scalar:
            return true;
        case xor_impl::avx2:
#if defined(__x86_64__) || defined(__i386__)
            return __builtin_cpu_supports("avx2") != 0;
#else
            return false;
#endif
        case xor_impl::avx512:
#if defined(__x86_64__) || defined(__i386__)
            return __builtin_cpu_supports("avx512f") != 0;
#else
            return false;
#endif
        case xor_impl::neon:
#if defined(__aarch64__)
            return true;  // ASIMD is aarch64 baseline
#else
            return false;
#endif
    }
    return false;
}

xor_impl best_available() noexcept {
    if (detect_available(xor_impl::avx512)) return xor_impl::avx512;
    if (detect_available(xor_impl::avx2)) return xor_impl::avx2;
    if (detect_available(xor_impl::neon)) return xor_impl::neon;
    return xor_impl::scalar;
}

xor_impl startup_impl() noexcept {
    const char* env = std::getenv("LIBERATION_XOR_IMPL");
    if (env != nullptr && *env != '\0') {
        xor_impl requested;
        if (!impl_from_name(env, requested)) {
            std::fprintf(stderr,
                         "liberation: unknown LIBERATION_XOR_IMPL '%s' "
                         "(expected scalar/avx2/avx512/neon/auto); "
                         "auto-detecting\n",
                         env);
        } else if (!detect_available(requested)) {
            std::fprintf(stderr,
                         "liberation: LIBERATION_XOR_IMPL=%s not supported "
                         "by this CPU/build; auto-detecting\n",
                         env);
        } else {
            return requested;
        }
    }
    return best_available();
}

// Dispatch state. CPU detection must not run during static initialization
// (other translation units' constructors may XOR), so the atomic is a lazy
// magic static — the same pattern as the CRC32C dispatcher.
std::atomic<xor_impl>& impl_slot() noexcept {
    static std::atomic<xor_impl> slot{startup_impl()};
    return slot;
}

const detail::kernel_table& table() noexcept {
    return table_for(impl_slot().load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Streaming-store threshold.

std::size_t startup_nt_threshold() noexcept {
    const char* env = std::getenv("LIBERATION_XOR_NT_THRESHOLD");
    if (env != nullptr && *env != '\0') {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(env, &end, 10);
        std::size_t scale = 1;
        if (end != env) {
            switch (*end) {
                case 'k':
                case 'K':
                    scale = std::size_t{1} << 10;
                    ++end;
                    break;
                case 'm':
                case 'M':
                    scale = std::size_t{1} << 20;
                    ++end;
                    break;
                case 'g':
                case 'G':
                    scale = std::size_t{1} << 30;
                    ++end;
                    break;
                default:
                    break;
            }
        }
        if (end != env && *end == '\0') {
            return static_cast<std::size_t>(v) * scale;
        }
        std::fprintf(stderr,
                     "liberation: malformed LIBERATION_XOR_NT_THRESHOLD '%s' "
                     "(expected bytes, optionally K/M/G-suffixed); using "
                     "default\n",
                     env);
    }
    // Streaming stores only pay off once the destination stops fitting in
    // the cache hierarchy: below the LLC size the regular stores hit cache
    // and streaming just forfeits residency.
#if defined(_SC_LEVEL3_CACHE_SIZE)
    const long llc = sysconf(_SC_LEVEL3_CACHE_SIZE);
    if (llc > 0) return static_cast<std::size_t>(llc);
#endif
    return std::size_t{32} << 20;
}

std::atomic<std::size_t>& nt_threshold_slot() noexcept {
    static std::atomic<std::size_t> slot{startup_nt_threshold()};
    return slot;
}

/// Streaming-store route: tier has a streaming path, streaming is enabled,
/// and the region is at/above the threshold. Callers additionally restrict
/// this to single-pass operations.
bool use_nt(const detail::kernel_table& t, std::size_t n) noexcept {
    if (t.xor_many_nt == nullptr) return false;
    const std::size_t thr =
        nt_threshold_slot().load(std::memory_order_relaxed);
    return thr != 0 && n >= thr;
}

// ---------------------------------------------------------------------------
// Fused-kernel plumbing.

/// Combiner for the given block size, cached per thread: construction
/// walks ~2.5k GF(2) products, far too heavy per call, while real callers
/// only ever use a handful of distinct block sizes (the integrity block
/// size, plus bench/test sweeps).
const integrity::crc32c_lane_combiner& combiner_for(
    std::size_t block) noexcept {
    constexpr std::size_t cache_size = 8;
    thread_local std::optional<integrity::crc32c_lane_combiner>
        cache[cache_size];
    thread_local std::size_t victim = 0;
    for (auto& c : cache) {
        if (c.has_value() && c->block() == block) return *c;
    }
    auto& slot = cache[victim];
    victim = (victim + 1) % cache_size;
    slot.emplace(block);
    return *slot;
}

/// Tier's checksum sweep, falling back to the portable one where a tier
/// has no fused entries (e.g. x86 builds without a 64-bit crc32).
void crc3_pass(const detail::kernel_table& t, const std::byte* src,
               std::size_t n, std::uint32_t lanes[3]) noexcept {
    (t.crc3 != nullptr ? t.crc3 : detail::scalar_table().crc3)(src, n, lanes);
}

void copy_crc3_pass(const detail::kernel_table& t, std::byte* dst,
                    const std::byte* src, std::size_t n,
                    std::uint32_t lanes[3]) noexcept {
    if (t.copy_crc3 != nullptr) {
        t.copy_crc3(dst, src, n, lanes);
    } else {
        std::memcpy(dst, src, n);
        crc3_pass(t, src, n, lanes);
    }
}

void xor_many_crc3_pass(const detail::kernel_table& t, std::byte* dst,
                        const std::byte* const* srcs, std::size_t m,
                        std::size_t n, bool acc,
                        std::uint32_t lanes[3]) noexcept {
    if (t.xor_many_crc3 != nullptr) {
        t.xor_many_crc3(dst, srcs, m, n, acc, lanes);
    } else {
        t.xor_many(dst, srcs, m, n, acc);
        crc3_pass(t, dst, n, lanes);
    }
}

/// Group-of-3 fast path: for 8-byte-multiple block sizes,
/// crc32c_lane_bytes(3 * block) == block, so one fused sweep over three
/// consecutive blocks makes each lane chain a *whole block* — the store
/// streams land block-aligned, three blocks share one kernel dispatch,
/// and no cross-lane shift is needed. combine({0, 0, chain}) brackets a
/// whole-block raw chain into that block's CRC (zero lanes are inert).
bool groupable(std::size_t block) noexcept { return block % 8 == 0; }

void combine3(const integrity::crc32c_lane_combiner& comb,
              const std::uint32_t lanes[3], std::uint32_t* crcs) noexcept {
    for (int i = 0; i < 3; ++i) {
        const std::uint32_t whole[3] = {0, 0, lanes[i]};
        crcs[i] = comb.combine(whole);
    }
}

/// Shared body of the fused XOR reductions: per checksum block (or group
/// of three), run the same pass sequence as the public xor_many, fusing
/// the CRC sweep into the *final* pass (the one that stores the block's
/// ultimate bytes).
void xor_many_crc_blocks_impl(std::byte* dst, const std::byte* const* srcs,
                              std::size_t nsrc, std::size_t n,
                              std::size_t block, std::uint32_t* crcs,
                              bool acc0) noexcept {
    const detail::kernel_table& t = table();
    const integrity::crc32c_lane_combiner& comb = combiner_for(block);
    const std::byte* shifted[detail::max_fan_in];
    const std::size_t nblocks = n / block;
    const bool grouped = groupable(block);
    for (std::size_t b = 0; b < nblocks;) {
        const std::size_t g = grouped && nblocks - b >= 3 ? 3 : 1;
        const std::size_t span = g * block;
        std::byte* d = dst + b * block;
        std::uint32_t lanes[3];
        std::size_t off = 0;
        bool acc = acc0;
        for (;;) {
            const std::size_t m =
                std::min(nsrc - off, detail::max_fan_in);
            for (std::size_t s = 0; s < m; ++s) {
                shifted[s] = srcs[off + s] + b * block;
            }
            if (off + m == nsrc) {
                xor_many_crc3_pass(t, d, shifted, m, span, acc, lanes);
                break;
            }
            t.xor_many(d, shifted, m, span, acc);
            off += m;
            acc = true;
        }
        if (g == 3) {
            combine3(comb, lanes, crcs + b);
        } else {
            crcs[b] = comb.combine(lanes);
        }
        b += g;
    }
}

}  // namespace

op_stats& counters() noexcept { return g_stats; }

void reset_counters() noexcept { g_stats.reset(); }

xor_impl active_impl() noexcept {
    return impl_slot().load(std::memory_order_relaxed);
}

bool impl_available(xor_impl impl) noexcept {
    static const bool available[4] = {
        detect_available(xor_impl::scalar), detect_available(xor_impl::avx2),
        detect_available(xor_impl::avx512), detect_available(xor_impl::neon)};
    const auto idx = static_cast<std::size_t>(impl);
    return idx < 4 && available[idx];
}

xor_impl default_impl() noexcept {
    static const xor_impl choice = startup_impl();
    return choice;
}

void force_impl(xor_impl impl) noexcept {
    if (!impl_available(impl)) impl = default_impl();
    impl_slot().store(impl, std::memory_order_relaxed);
}

const char* impl_name(xor_impl impl) noexcept {
    switch (impl) {
        case xor_impl::scalar:
            return "scalar";
        case xor_impl::avx2:
            return "avx2";
        case xor_impl::avx512:
            return "avx512";
        case xor_impl::neon:
            return "neon";
    }
    return "scalar";
}

bool impl_from_name(const char* name, xor_impl& out) noexcept {
    if (name == nullptr) return false;
    const auto is = [name](const char* s) noexcept {
        return std::strcmp(name, s) == 0;
    };
    if (is("scalar") || is("software") || is("sw")) {
        out = xor_impl::scalar;
    } else if (is("avx2")) {
        out = xor_impl::avx2;
    } else if (is("avx512") || is("avx-512") || is("avx512f")) {
        out = xor_impl::avx512;
    } else if (is("neon") || is("asimd")) {
        out = xor_impl::neon;
    } else if (is("auto")) {
        out = best_available();
    } else {
        return false;
    }
    return true;
}

std::size_t max_fused_sources() noexcept { return detail::max_fan_in; }

std::size_t nt_threshold() noexcept {
    return nt_threshold_slot().load(std::memory_order_relaxed);
}

void set_nt_threshold(std::size_t bytes) noexcept {
    nt_threshold_slot().store(bytes, std::memory_order_relaxed);
}

void xor_into(std::byte* dst, const std::byte* src, std::size_t n) noexcept {
    const detail::kernel_table& t = table();
    if (use_nt(t, n)) {
        const std::byte* srcs[1] = {src};
        t.xor_many_nt(dst, srcs, 1, n, /*acc=*/true);
    } else {
        t.xor_into(dst, src, n);
    }
    ++g_stats.xor_ops;
    g_stats.bytes_xored += n;
}

void xor2(std::byte* dst, const std::byte* a, const std::byte* b,
          std::size_t n) noexcept {
    const detail::kernel_table& t = table();
    if (use_nt(t, n)) {
        const std::byte* srcs[2] = {a, b};
        t.xor_many_nt(dst, srcs, 2, n, /*acc=*/false);
    } else {
        t.xor2(dst, a, b, n);
    }
    ++g_stats.xor_ops;
    g_stats.bytes_xored += n;
}

void xor_many(std::byte* dst, const std::byte* const* srcs, std::size_t nsrc,
              std::size_t n) noexcept {
    LIBERATION_EXPECTS(nsrc >= 1);
    const detail::kernel_table& t = table();
    std::size_t pass = std::min(nsrc, detail::max_fan_in);
    // Streaming stores only for single-pass reductions: a multi-pass
    // destination is re-read by every later pass, exactly the access
    // pattern streaming stores punish.
    if (pass == nsrc && use_nt(t, n)) {
        t.xor_many_nt(dst, srcs, pass, n, /*acc=*/false);
    } else {
        t.xor_many(dst, srcs, pass, n, /*acc=*/false);
        for (std::size_t off = pass; off < nsrc; off += pass) {
            pass = std::min(nsrc - off, detail::max_fan_in);
            t.xor_many(dst, srcs + off, pass, n, /*acc=*/true);
        }
    }
    ++g_stats.copy_ops;
    g_stats.bytes_copied += n;
    g_stats.xor_ops += nsrc - 1;
    g_stats.bytes_xored += (nsrc - 1) * n;
}

void xor_many_into(std::byte* dst, const std::byte* const* srcs,
                   std::size_t nsrc, std::size_t n) noexcept {
    if (nsrc == 0) return;
    const detail::kernel_table& t = table();
    if (nsrc <= detail::max_fan_in && use_nt(t, n)) {
        t.xor_many_nt(dst, srcs, nsrc, n, /*acc=*/true);
    } else {
        for (std::size_t off = 0; off < nsrc;) {
            const std::size_t pass = std::min(nsrc - off, detail::max_fan_in);
            t.xor_many(dst, srcs + off, pass, n, /*acc=*/true);
            off += pass;
        }
    }
    g_stats.xor_ops += nsrc;
    g_stats.bytes_xored += nsrc * n;
}

void crc32c_blocks(const std::byte* src, std::size_t n, std::size_t block,
                   std::uint32_t* crcs) noexcept {
    if (n == 0) return;
    LIBERATION_EXPECTS(block > 0 && n % block == 0);
    const detail::kernel_table& t = table();
    const integrity::crc32c_lane_combiner& comb = combiner_for(block);
    const std::size_t nblocks = n / block;
    std::size_t b = 0;
    if (groupable(block)) {
        for (; b + 3 <= nblocks; b += 3) {
            std::uint32_t lanes[3];
            crc3_pass(t, src + b * block, 3 * block, lanes);
            combine3(comb, lanes, crcs + b);
        }
    }
    for (; b < nblocks; ++b) {
        std::uint32_t lanes[3];
        crc3_pass(t, src + b * block, block, lanes);
        crcs[b] = comb.combine(lanes);
    }
}

void copy_crc32c_blocks(std::byte* dst, const std::byte* src, std::size_t n,
                        std::size_t block, std::uint32_t* crcs) noexcept {
    if (n == 0) return;
    LIBERATION_EXPECTS(block > 0 && n % block == 0);
    const detail::kernel_table& t = table();
    const integrity::crc32c_lane_combiner& comb = combiner_for(block);
    const std::size_t nblocks = n / block;
    std::size_t b = 0;
    if (groupable(block)) {
        for (; b + 3 <= nblocks; b += 3) {
            std::uint32_t lanes[3];
            copy_crc3_pass(t, dst + b * block, src + b * block, 3 * block,
                           lanes);
            combine3(comb, lanes, crcs + b);
        }
    }
    for (; b < nblocks; ++b) {
        std::uint32_t lanes[3];
        copy_crc3_pass(t, dst + b * block, src + b * block, block, lanes);
        crcs[b] = comb.combine(lanes);
    }
    ++g_stats.copy_ops;
    g_stats.bytes_copied += n;
}

void xor_many_crc32c_blocks(std::byte* dst, const std::byte* const* srcs,
                            std::size_t nsrc, std::size_t n, std::size_t block,
                            std::uint32_t* crcs) noexcept {
    LIBERATION_EXPECTS(nsrc >= 1);
    if (n != 0) {
        LIBERATION_EXPECTS(block > 0 && n % block == 0);
        xor_many_crc_blocks_impl(dst, srcs, nsrc, n, block, crcs,
                                 /*acc0=*/false);
    }
    ++g_stats.copy_ops;
    g_stats.bytes_copied += n;
    g_stats.xor_ops += nsrc - 1;
    g_stats.bytes_xored += (nsrc - 1) * n;
}

void xor_many_into_crc32c_blocks(std::byte* dst, const std::byte* const* srcs,
                                 std::size_t nsrc, std::size_t n,
                                 std::size_t block,
                                 std::uint32_t* crcs) noexcept {
    if (nsrc == 0) {
        crc32c_blocks(dst, n, block, crcs);
        return;
    }
    if (n != 0) {
        LIBERATION_EXPECTS(block > 0 && n % block == 0);
        xor_many_crc_blocks_impl(dst, srcs, nsrc, n, block, crcs,
                                 /*acc0=*/true);
    }
    g_stats.xor_ops += nsrc;
    g_stats.bytes_xored += nsrc * n;
}

void xor_broadcast(std::byte* const* dsts, std::size_t ndst,
                   const std::byte* src, std::size_t n) noexcept {
    // One pass per destination; src stays cache-hot after the first, so a
    // dedicated multi-store kernel would only save redundant L1 hits.
    const detail::kernel_table& t = table();
    for (std::size_t d = 0; d < ndst; ++d) t.xor_into(dsts[d], src, n);
    g_stats.xor_ops += ndst;
    g_stats.bytes_xored += ndst * n;
}

void copy(std::byte* dst, const std::byte* src, std::size_t n) noexcept {
    std::memcpy(dst, src, n);
    ++g_stats.copy_ops;
    g_stats.bytes_copied += n;
}

void zero(std::byte* dst, std::size_t n) noexcept { std::memset(dst, 0, n); }

bool is_zero(const std::byte* src, std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        std::uint64_t w0, w1, w2, w3;
        std::memcpy(&w0, src + i, 8);
        std::memcpy(&w1, src + i + 8, 8);
        std::memcpy(&w2, src + i + 16, 8);
        std::memcpy(&w3, src + i + 24, 8);
        if ((w0 | w1 | w2 | w3) != 0) return false;
    }
    for (; i + 8 <= n; i += 8) {
        std::uint64_t w;
        std::memcpy(&w, src + i, 8);
        if (w != 0) return false;
    }
    for (; i < n; ++i) {
        if (src[i] != std::byte{0}) return false;
    }
    return true;
}

bool equal(const std::byte* a, const std::byte* b, std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        std::uint64_t a0, a1, a2, a3, b0, b1, b2, b3;
        std::memcpy(&a0, a + i, 8);
        std::memcpy(&a1, a + i + 8, 8);
        std::memcpy(&a2, a + i + 16, 8);
        std::memcpy(&a3, a + i + 24, 8);
        std::memcpy(&b0, b + i, 8);
        std::memcpy(&b1, b + i + 8, 8);
        std::memcpy(&b2, b + i + 16, 8);
        std::memcpy(&b3, b + i + 24, 8);
        if (((a0 ^ b0) | (a1 ^ b1) | (a2 ^ b2) | (a3 ^ b3)) != 0) return false;
    }
    for (; i + 8 <= n; i += 8) {
        std::uint64_t x, y;
        std::memcpy(&x, a + i, 8);
        std::memcpy(&y, b + i, 8);
        if (x != y) return false;
    }
    for (; i < n; ++i) {
        if (a[i] != b[i]) return false;
    }
    return true;
}

void xor_into(std::span<std::byte> dst,
              std::span<const std::byte> src) noexcept {
    LIBERATION_EXPECTS(dst.size() == src.size());
    xor_into(dst.data(), src.data(), dst.size());
}

void xor2(std::span<std::byte> dst, std::span<const std::byte> a,
          std::span<const std::byte> b) noexcept {
    LIBERATION_EXPECTS(dst.size() == a.size() && dst.size() == b.size());
    xor2(dst.data(), a.data(), b.data(), dst.size());
}

void copy(std::span<std::byte> dst, std::span<const std::byte> src) noexcept {
    LIBERATION_EXPECTS(dst.size() == src.size());
    copy(dst.data(), src.data(), dst.size());
}

}  // namespace liberation::xorops
