// AVX2 and AVX-512F XOR kernel tiers (x86 only; this file compiles to
// nothing elsewhere). Bodies use `__attribute__((target))` rather than
// file-level -m flags — the same pattern as integrity/crc32c.cpp — so no
// instruction outside these functions requires the extended ISA, and the
// dispatcher may safely take their addresses on any x86 CPU.
//
// All loads/stores are unaligned variants: on every AVX2/AVX-512 core the
// unaligned instruction at an aligned address costs the same as the
// aligned one, and the kernels must accept sector-offset pointers.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "liberation/xorops/xor_kernels.hpp"

namespace liberation::xorops::detail {

namespace {

// ---------------------------------------------------------------------------
// AVX2: 64-byte chunks (2 x 32-byte lanes).

__attribute__((target("avx2"))) void xor_into_avx2(std::byte* dst,
                                                   const std::byte* src,
                                                   std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m256i d0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        const __m256i d1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
        const __m256i s0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i s1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_xor_si256(d0, s0));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                            _mm256_xor_si256(d1, s1));
    }
    const std::byte* srcs[1] = {src};
    xor_many_tail(dst, srcs, 1, i, n, /*acc=*/true);
}

__attribute__((target("avx2"))) void xor2_avx2(std::byte* dst,
                                               const std::byte* a,
                                               const std::byte* b,
                                               std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m256i a0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i a1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 32));
        const __m256i b0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i b1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_xor_si256(a0, b0));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                            _mm256_xor_si256(a1, b1));
    }
    const std::byte* srcs[2] = {a, b};
    xor_many_tail(dst, srcs, 2, i, n, /*acc=*/false);
}

__attribute__((target("avx2"))) void xor_many_avx2(std::byte* dst,
                                                   const std::byte* const* srcs,
                                                   std::size_t m, std::size_t n,
                                                   bool acc) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m256i a0, a1;
        std::size_t s;
        if (acc) {
            a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
            a1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(dst + i + 32));
            s = 0;
        } else {
            a0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(srcs[0] + i));
            a1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(srcs[0] + i + 32));
            s = 1;
        }
        for (; s < m; ++s) {
            a0 = _mm256_xor_si256(
                a0, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(srcs[s] + i)));
            a1 = _mm256_xor_si256(
                a1, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(srcs[s] + i + 32)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), a1);
    }
    xor_many_tail(dst, srcs, m, i, n, acc);
}

// ---------------------------------------------------------------------------
// AVX-512F: 128-byte chunks (2 zmm), then one 64-byte step. Pure xors never
// need the BW/DQ extensions, so plain avx512f is the gate.

__attribute__((target("avx512f"))) void xor_into_avx512(
    std::byte* dst, const std::byte* src, std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        const __m512i d0 = _mm512_loadu_si512(dst + i);
        const __m512i d1 = _mm512_loadu_si512(dst + i + 64);
        const __m512i s0 = _mm512_loadu_si512(src + i);
        const __m512i s1 = _mm512_loadu_si512(src + i + 64);
        _mm512_storeu_si512(dst + i, _mm512_xor_si512(d0, s0));
        _mm512_storeu_si512(dst + i + 64, _mm512_xor_si512(d1, s1));
    }
    if (i + 64 <= n) {
        _mm512_storeu_si512(dst + i,
                            _mm512_xor_si512(_mm512_loadu_si512(dst + i),
                                             _mm512_loadu_si512(src + i)));
        i += 64;
    }
    const std::byte* srcs[1] = {src};
    xor_many_tail(dst, srcs, 1, i, n, /*acc=*/true);
}

__attribute__((target("avx512f"))) void xor2_avx512(std::byte* dst,
                                                    const std::byte* a,
                                                    const std::byte* b,
                                                    std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        const __m512i a0 = _mm512_loadu_si512(a + i);
        const __m512i a1 = _mm512_loadu_si512(a + i + 64);
        const __m512i b0 = _mm512_loadu_si512(b + i);
        const __m512i b1 = _mm512_loadu_si512(b + i + 64);
        _mm512_storeu_si512(dst + i, _mm512_xor_si512(a0, b0));
        _mm512_storeu_si512(dst + i + 64, _mm512_xor_si512(a1, b1));
    }
    if (i + 64 <= n) {
        _mm512_storeu_si512(dst + i,
                            _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                             _mm512_loadu_si512(b + i)));
        i += 64;
    }
    const std::byte* srcs[2] = {a, b};
    xor_many_tail(dst, srcs, 2, i, n, /*acc=*/false);
}

__attribute__((target("avx512f"))) void xor_many_avx512(
    std::byte* dst, const std::byte* const* srcs, std::size_t m, std::size_t n,
    bool acc) noexcept {
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        __m512i a0, a1;
        std::size_t s;
        if (acc) {
            a0 = _mm512_loadu_si512(dst + i);
            a1 = _mm512_loadu_si512(dst + i + 64);
            s = 0;
        } else {
            a0 = _mm512_loadu_si512(srcs[0] + i);
            a1 = _mm512_loadu_si512(srcs[0] + i + 64);
            s = 1;
        }
        for (; s < m; ++s) {
            a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(srcs[s] + i));
            a1 = _mm512_xor_si512(a1, _mm512_loadu_si512(srcs[s] + i + 64));
        }
        _mm512_storeu_si512(dst + i, a0);
        _mm512_storeu_si512(dst + i + 64, a1);
    }
    if (i + 64 <= n) {
        __m512i a0;
        std::size_t s;
        if (acc) {
            a0 = _mm512_loadu_si512(dst + i);
            s = 0;
        } else {
            a0 = _mm512_loadu_si512(srcs[0] + i);
            s = 1;
        }
        for (; s < m; ++s) {
            a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(srcs[s] + i));
        }
        _mm512_storeu_si512(dst + i, a0);
        i += 64;
    }
    xor_many_tail(dst, srcs, m, i, n, acc);
}

}  // namespace

const kernel_table& avx2_table() noexcept {
    static constexpr kernel_table table{"avx2", xor_into_avx2, xor2_avx2,
                                        xor_many_avx2};
    return table;
}

const kernel_table& avx512_table() noexcept {
    static constexpr kernel_table table{"avx512", xor_into_avx512, xor2_avx512,
                                        xor_many_avx512};
    return table;
}

}  // namespace liberation::xorops::detail

#endif  // x86
