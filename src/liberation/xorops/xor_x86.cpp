// AVX2 and AVX-512F XOR kernel tiers (x86 only; this file compiles to
// nothing elsewhere). Bodies use `__attribute__((target))` rather than
// file-level -m flags — the same pattern as integrity/crc32c.cpp — so no
// instruction outside these functions requires the extended ISA, and the
// dispatcher may safely take their addresses on any x86 CPU.
//
// All loads/stores are unaligned variants: on every AVX2/AVX-512 core the
// unaligned instruction at an aligned address costs the same as the
// aligned one, and the kernels must accept sector-offset pointers.
#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include "liberation/integrity/crc32c.hpp"
#include "liberation/xorops/xor_kernels.hpp"

namespace liberation::xorops::detail {

namespace {

// ---------------------------------------------------------------------------
// AVX2: 64-byte chunks (2 x 32-byte lanes).

__attribute__((target("avx2"))) void xor_into_avx2(std::byte* dst,
                                                   const std::byte* src,
                                                   std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m256i d0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
        const __m256i d1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i + 32));
        const __m256i s0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
        const __m256i s1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_xor_si256(d0, s0));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                            _mm256_xor_si256(d1, s1));
    }
    const std::byte* srcs[1] = {src};
    xor_many_tail(dst, srcs, 1, i, n, /*acc=*/true);
}

__attribute__((target("avx2"))) void xor2_avx2(std::byte* dst,
                                               const std::byte* a,
                                               const std::byte* b,
                                               std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        const __m256i a0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
        const __m256i a1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i + 32));
        const __m256i b0 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
        const __m256i b1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i + 32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                            _mm256_xor_si256(a0, b0));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32),
                            _mm256_xor_si256(a1, b1));
    }
    const std::byte* srcs[2] = {a, b};
    xor_many_tail(dst, srcs, 2, i, n, /*acc=*/false);
}

__attribute__((target("avx2"))) void xor_many_avx2(std::byte* dst,
                                                   const std::byte* const* srcs,
                                                   std::size_t m, std::size_t n,
                                                   bool acc) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        __m256i a0, a1;
        std::size_t s;
        if (acc) {
            a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
            a1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(dst + i + 32));
            s = 0;
        } else {
            a0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(srcs[0] + i));
            a1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(srcs[0] + i + 32));
            s = 1;
        }
        for (; s < m; ++s) {
            a0 = _mm256_xor_si256(
                a0, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(srcs[s] + i)));
            a1 = _mm256_xor_si256(
                a1, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(srcs[s] + i + 32)));
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), a0);
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + 32), a1);
    }
    xor_many_tail(dst, srcs, m, i, n, acc);
}

// ---------------------------------------------------------------------------
// AVX-512F: 128-byte chunks (2 zmm), then one 64-byte step. Pure xors never
// need the BW/DQ extensions, so plain avx512f is the gate.

__attribute__((target("avx512f"))) void xor_into_avx512(
    std::byte* dst, const std::byte* src, std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        const __m512i d0 = _mm512_loadu_si512(dst + i);
        const __m512i d1 = _mm512_loadu_si512(dst + i + 64);
        const __m512i s0 = _mm512_loadu_si512(src + i);
        const __m512i s1 = _mm512_loadu_si512(src + i + 64);
        _mm512_storeu_si512(dst + i, _mm512_xor_si512(d0, s0));
        _mm512_storeu_si512(dst + i + 64, _mm512_xor_si512(d1, s1));
    }
    if (i + 64 <= n) {
        _mm512_storeu_si512(dst + i,
                            _mm512_xor_si512(_mm512_loadu_si512(dst + i),
                                             _mm512_loadu_si512(src + i)));
        i += 64;
    }
    const std::byte* srcs[1] = {src};
    xor_many_tail(dst, srcs, 1, i, n, /*acc=*/true);
}

__attribute__((target("avx512f"))) void xor2_avx512(std::byte* dst,
                                                    const std::byte* a,
                                                    const std::byte* b,
                                                    std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        const __m512i a0 = _mm512_loadu_si512(a + i);
        const __m512i a1 = _mm512_loadu_si512(a + i + 64);
        const __m512i b0 = _mm512_loadu_si512(b + i);
        const __m512i b1 = _mm512_loadu_si512(b + i + 64);
        _mm512_storeu_si512(dst + i, _mm512_xor_si512(a0, b0));
        _mm512_storeu_si512(dst + i + 64, _mm512_xor_si512(a1, b1));
    }
    if (i + 64 <= n) {
        _mm512_storeu_si512(dst + i,
                            _mm512_xor_si512(_mm512_loadu_si512(a + i),
                                             _mm512_loadu_si512(b + i)));
        i += 64;
    }
    const std::byte* srcs[2] = {a, b};
    xor_many_tail(dst, srcs, 2, i, n, /*acc=*/false);
}

__attribute__((target("avx512f"))) void xor_many_avx512(
    std::byte* dst, const std::byte* const* srcs, std::size_t m, std::size_t n,
    bool acc) noexcept {
    std::size_t i = 0;
    for (; i + 128 <= n; i += 128) {
        __m512i a0, a1;
        std::size_t s;
        if (acc) {
            a0 = _mm512_loadu_si512(dst + i);
            a1 = _mm512_loadu_si512(dst + i + 64);
            s = 0;
        } else {
            a0 = _mm512_loadu_si512(srcs[0] + i);
            a1 = _mm512_loadu_si512(srcs[0] + i + 64);
            s = 1;
        }
        for (; s < m; ++s) {
            a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(srcs[s] + i));
            a1 = _mm512_xor_si512(a1, _mm512_loadu_si512(srcs[s] + i + 64));
        }
        _mm512_storeu_si512(dst + i, a0);
        _mm512_storeu_si512(dst + i + 64, a1);
    }
    if (i + 64 <= n) {
        __m512i a0;
        std::size_t s;
        if (acc) {
            a0 = _mm512_loadu_si512(dst + i);
            s = 0;
        } else {
            a0 = _mm512_loadu_si512(srcs[0] + i);
            s = 1;
        }
        for (; s < m; ++s) {
            a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(srcs[s] + i));
        }
        _mm512_storeu_si512(dst + i, a0);
        i += 64;
    }
    xor_many_tail(dst, srcs, m, i, n, acc);
}

// ---------------------------------------------------------------------------
// Non-temporal variants: identical reductions, but the destination is
// written with streaming stores that bypass the cache hierarchy — for
// destinations too large to profit from residency, this avoids the
// read-for-ownership of every destination line (a full extra read stream)
// and the eviction of still-useful data. Streaming stores require an
// aligned destination, so a short head is peeled off through the portable
// tail, and an sfence publishes the WC buffers before returning.

__attribute__((target("avx2"))) void xor_many_nt_avx2(
    std::byte* dst, const std::byte* const* srcs, std::size_t m, std::size_t n,
    bool acc) noexcept {
    std::size_t head =
        (32 - (reinterpret_cast<std::uintptr_t>(dst) & 31)) & 31;
    if (head > n) head = n;
    if (head != 0) xor_many_tail(dst, srcs, m, 0, head, acc);
    std::size_t i = head;
    for (; i + 32 <= n; i += 32) {
        __m256i a0;
        std::size_t s;
        if (acc) {
            a0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
            s = 0;
        } else {
            a0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i*>(srcs[0] + i));
            s = 1;
        }
        for (; s < m; ++s) {
            a0 = _mm256_xor_si256(
                a0, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i*>(srcs[s] + i)));
        }
        _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i), a0);
    }
    _mm_sfence();
    xor_many_tail(dst, srcs, m, i, n, acc);
}

__attribute__((target("avx512f"))) void xor_many_nt_avx512(
    std::byte* dst, const std::byte* const* srcs, std::size_t m, std::size_t n,
    bool acc) noexcept {
    std::size_t head =
        (64 - (reinterpret_cast<std::uintptr_t>(dst) & 63)) & 63;
    if (head > n) head = n;
    if (head != 0) xor_many_tail(dst, srcs, m, 0, head, acc);
    std::size_t i = head;
    for (; i + 64 <= n; i += 64) {
        __m512i a0;
        std::size_t s;
        if (acc) {
            a0 = _mm512_loadu_si512(dst + i);
            s = 0;
        } else {
            a0 = _mm512_loadu_si512(srcs[0] + i);
            s = 1;
        }
        for (; s < m; ++s) {
            a0 = _mm512_xor_si512(a0, _mm512_loadu_si512(srcs[s] + i));
        }
        _mm512_stream_si512(reinterpret_cast<__m512i*>(dst + i), a0);
    }
    _mm_sfence();
    xor_many_tail(dst, srcs, m, i, n, acc);
}

// ---------------------------------------------------------------------------
// Fused CRC sweeps. The hardware crc32 instruction has a 3-cycle
// dependency latency, so a single chain caps out near 2.7 bytes/cycle;
// the three independent lane chains of the crc32c_lane_bytes() split keep
// the unit saturated at ~8 bytes/cycle. Lane values are stitched back
// into block CRCs by the caller's crc32c_lane_combiner.

#if defined(__x86_64__)

/// Raw lane sweep over [src, src+n): the shared checksum engine of the
/// x86 fused kernels (sse4.2 only — callable from both vector tiers).
__attribute__((target("sse4.2"))) void crc3_hw(const std::byte* src,
                                               std::size_t n,
                                               std::uint32_t lanes[3]) noexcept {
    const std::size_t lane = integrity::crc32c_lane_bytes(n);
    const std::byte* p0 = src;
    const std::byte* p1 = src + lane;
    const std::byte* p2 = src + 2 * lane;
    std::uint64_t c0 = 0, c1 = 0, c2 = 0;
    std::size_t i = 0;
    for (; i + 8 <= lane; i += 8) {
        std::uint64_t w0, w1, w2;
        std::memcpy(&w0, p0 + i, 8);
        std::memcpy(&w1, p1 + i, 8);
        std::memcpy(&w2, p2 + i, 8);
        c0 = __builtin_ia32_crc32di(c0, w0);
        c1 = __builtin_ia32_crc32di(c1, w1);
        c2 = __builtin_ia32_crc32di(c2, w2);
    }
    // lane is 8-byte aligned, so chains 0 and 1 are complete; lane 2 is
    // the long one — finish its remainder word- then byte-wise.
    const std::size_t rem = n - 2 * lane;
    std::size_t j = i;
    for (; j + 8 <= rem; j += 8) {
        std::uint64_t w;
        std::memcpy(&w, p2 + j, 8);
        c2 = __builtin_ia32_crc32di(c2, w);
    }
    std::uint32_t c2w = static_cast<std::uint32_t>(c2);
    for (; j < rem; ++j) {
        c2w = __builtin_ia32_crc32qi(c2w,
                                     std::to_integer<unsigned char>(p2[j]));
    }
    lanes[0] = static_cast<std::uint32_t>(c0);
    lanes[1] = static_cast<std::uint32_t>(c1);
    lanes[2] = c2w;
}

/// Copy with the checksum riding inside the same traversal: three 32-byte
/// copy streams (one per lane) interleaved with their crc32 chains, so
/// the bytes are read once for both jobs.
__attribute__((target("avx2,sse4.2"))) void copy_crc3_avx2(
    std::byte* dst, const std::byte* src, std::size_t n,
    std::uint32_t lanes[3]) noexcept {
    const std::size_t lane = integrity::crc32c_lane_bytes(n);
    const std::byte* s0 = src;
    const std::byte* s1 = src + lane;
    const std::byte* s2 = src + 2 * lane;
    std::byte* d0 = dst;
    std::byte* d1 = dst + lane;
    std::byte* d2 = dst + 2 * lane;
    std::uint64_t c0 = 0, c1 = 0, c2 = 0;
    std::size_t i = 0;
    for (; i + 32 <= lane; i += 32) {
        // The three lane streams are short (a third of a block each), so
        // the hardware prefetcher restarts constantly; prefetch each
        // stream a few hundred bytes ahead by hand. Prefetches past the
        // lane end are architecturally harmless.
        _mm_prefetch(reinterpret_cast<const char*>(s0 + i) + 512,
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(s1 + i) + 512,
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(s2 + i) + 512,
                     _MM_HINT_T0);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(d0 + i),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s0 + i)));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(d1 + i),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s1 + i)));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i*>(d2 + i),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s2 + i)));
        std::uint64_t w;
        for (std::size_t q = 0; q < 32; q += 8) {
            std::memcpy(&w, s0 + i + q, 8);
            c0 = __builtin_ia32_crc32di(c0, w);
            std::memcpy(&w, s1 + i + q, 8);
            c1 = __builtin_ia32_crc32di(c1, w);
            std::memcpy(&w, s2 + i + q, 8);
            c2 = __builtin_ia32_crc32di(c2, w);
        }
    }
    for (; i + 8 <= lane; i += 8) {
        std::uint64_t w0, w1, w2;
        std::memcpy(&w0, s0 + i, 8);
        std::memcpy(&w1, s1 + i, 8);
        std::memcpy(&w2, s2 + i, 8);
        std::memcpy(d0 + i, &w0, 8);
        std::memcpy(d1 + i, &w1, 8);
        std::memcpy(d2 + i, &w2, 8);
        c0 = __builtin_ia32_crc32di(c0, w0);
        c1 = __builtin_ia32_crc32di(c1, w1);
        c2 = __builtin_ia32_crc32di(c2, w2);
    }
    const std::size_t rem = n - 2 * lane;
    std::size_t j = i;
    for (; j + 8 <= rem; j += 8) {
        std::uint64_t w;
        std::memcpy(&w, s2 + j, 8);
        std::memcpy(d2 + j, &w, 8);
        c2 = __builtin_ia32_crc32di(c2, w);
    }
    std::uint32_t c2w = static_cast<std::uint32_t>(c2);
    for (; j < rem; ++j) {
        d2[j] = s2[j];
        c2w = __builtin_ia32_crc32qi(c2w,
                                     std::to_integer<unsigned char>(s2[j]));
    }
    lanes[0] = static_cast<std::uint32_t>(c0);
    lanes[1] = static_cast<std::uint32_t>(c1);
    lanes[2] = c2w;
}

// The fused reductions produce the whole (block-sized) destination with
// the regular XOR body, then sweep it while it is still L1-resident: the
// region is touched once from the memory system's point of view, and the
// XOR and CRC units (different execution ports) overlap across blocks.

void xor_many_crc3_avx2(std::byte* dst, const std::byte* const* srcs,
                        std::size_t m, std::size_t n, bool acc,
                        std::uint32_t lanes[3]) noexcept {
    xor_many_avx2(dst, srcs, m, n, acc);
    crc3_hw(dst, n, lanes);
}

void xor_many_crc3_avx512(std::byte* dst, const std::byte* const* srcs,
                          std::size_t m, std::size_t n, bool acc,
                          std::uint32_t lanes[3]) noexcept {
    xor_many_avx512(dst, srcs, m, n, acc);
    crc3_hw(dst, n, lanes);
}

/// 64-byte copy streams for the avx512 tier; checksum engine unchanged.
__attribute__((target("avx512f,sse4.2"))) void copy_crc3_avx512(
    std::byte* dst, const std::byte* src, std::size_t n,
    std::uint32_t lanes[3]) noexcept {
    const std::size_t lane = integrity::crc32c_lane_bytes(n);
    const std::byte* s0 = src;
    const std::byte* s1 = src + lane;
    const std::byte* s2 = src + 2 * lane;
    std::uint64_t c0 = 0, c1 = 0, c2 = 0;
    std::size_t i = 0;
    for (; i + 64 <= lane; i += 64) {
        // Same manual prefetch story as the avx2 tier: three short lane
        // streams defeat the hardware stream prefetcher.
        _mm_prefetch(reinterpret_cast<const char*>(s0 + i) + 512,
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(s1 + i) + 512,
                     _MM_HINT_T0);
        _mm_prefetch(reinterpret_cast<const char*>(s2 + i) + 512,
                     _MM_HINT_T0);
        _mm512_storeu_si512(dst + i, _mm512_loadu_si512(s0 + i));
        _mm512_storeu_si512(dst + lane + i, _mm512_loadu_si512(s1 + i));
        _mm512_storeu_si512(dst + 2 * lane + i, _mm512_loadu_si512(s2 + i));
        std::uint64_t w;
        for (std::size_t q = 0; q < 64; q += 8) {
            std::memcpy(&w, s0 + i + q, 8);
            c0 = __builtin_ia32_crc32di(c0, w);
            std::memcpy(&w, s1 + i + q, 8);
            c1 = __builtin_ia32_crc32di(c1, w);
            std::memcpy(&w, s2 + i + q, 8);
            c2 = __builtin_ia32_crc32di(c2, w);
        }
    }
    for (; i + 8 <= lane; i += 8) {
        std::uint64_t w0, w1, w2;
        std::memcpy(&w0, s0 + i, 8);
        std::memcpy(&w1, s1 + i, 8);
        std::memcpy(&w2, s2 + i, 8);
        std::memcpy(dst + i, &w0, 8);
        std::memcpy(dst + lane + i, &w1, 8);
        std::memcpy(dst + 2 * lane + i, &w2, 8);
        c0 = __builtin_ia32_crc32di(c0, w0);
        c1 = __builtin_ia32_crc32di(c1, w1);
        c2 = __builtin_ia32_crc32di(c2, w2);
    }
    const std::size_t rem = n - 2 * lane;
    std::size_t j = i;
    for (; j + 8 <= rem; j += 8) {
        std::uint64_t w;
        std::memcpy(&w, s2 + j, 8);
        std::memcpy(dst + 2 * lane + j, &w, 8);
        c2 = __builtin_ia32_crc32di(c2, w);
    }
    std::uint32_t c2w = static_cast<std::uint32_t>(c2);
    for (; j < rem; ++j) {
        dst[2 * lane + j] = s2[j];
        c2w = __builtin_ia32_crc32qi(c2w,
                                     std::to_integer<unsigned char>(s2[j]));
    }
    lanes[0] = static_cast<std::uint32_t>(c0);
    lanes[1] = static_cast<std::uint32_t>(c1);
    lanes[2] = c2w;
}

#endif  // __x86_64__

}  // namespace

const kernel_table& avx2_table() noexcept {
#if defined(__x86_64__)
    static const kernel_table table{
        "avx2",     xor_into_avx2,  xor2_avx2,
        xor_many_avx2, xor_many_nt_avx2,
        crc3_hw,    copy_crc3_avx2, xor_many_crc3_avx2};
#else
    // i386 has no 64-bit crc32 instruction; the dispatcher falls back to
    // the scalar tier's software fused sweeps.
    static const kernel_table table{
        "avx2",     xor_into_avx2,  xor2_avx2,
        xor_many_avx2, xor_many_nt_avx2,
        nullptr,    nullptr,        nullptr};
#endif
    return table;
}

const kernel_table& avx512_table() noexcept {
#if defined(__x86_64__)
    static const kernel_table table{
        "avx512",   xor_into_avx512,  xor2_avx512,
        xor_many_avx512, xor_many_nt_avx512,
        crc3_hw,    copy_crc3_avx512, xor_many_crc3_avx512};
#else
    static const kernel_table table{
        "avx512",   xor_into_avx512,  xor2_avx512,
        xor_many_avx512, xor_many_nt_avx512,
        nullptr,    nullptr,          nullptr};
#endif
    return table;
}

}  // namespace liberation::xorops::detail

#endif  // x86
