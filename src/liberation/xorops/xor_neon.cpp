// NEON (ASIMD) XOR kernel tier for aarch64, where ASIMD is part of the
// baseline ISA — no target attribute or runtime probe needed; the
// dispatcher still exposes it as a distinct tier so benches and tests can
// compare it against the scalar fallback. Compiles to nothing off-arm.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "liberation/integrity/crc32c.hpp"
#include "liberation/xorops/xor_kernels.hpp"

#if defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1u << 7)
#endif
#endif

namespace liberation::xorops::detail {

namespace {

inline uint8x16x4_t load64(const std::byte* p) noexcept {
    return vld1q_u8_x4(reinterpret_cast<const std::uint8_t*>(p));
}

inline void store64(std::byte* p, uint8x16x4_t v) noexcept {
    vst1q_u8_x4(reinterpret_cast<std::uint8_t*>(p), v);
}

inline uint8x16x4_t xor64(uint8x16x4_t a, uint8x16x4_t b) noexcept {
    return {veorq_u8(a.val[0], b.val[0]), veorq_u8(a.val[1], b.val[1]),
            veorq_u8(a.val[2], b.val[2]), veorq_u8(a.val[3], b.val[3])};
}

void xor_into_neon(std::byte* dst, const std::byte* src,
                   std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        store64(dst + i, xor64(load64(dst + i), load64(src + i)));
    }
    const std::byte* srcs[1] = {src};
    xor_many_tail(dst, srcs, 1, i, n, /*acc=*/true);
}

void xor2_neon(std::byte* dst, const std::byte* a, const std::byte* b,
               std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        store64(dst + i, xor64(load64(a + i), load64(b + i)));
    }
    const std::byte* srcs[2] = {a, b};
    xor_many_tail(dst, srcs, 2, i, n, /*acc=*/false);
}

void xor_many_neon(std::byte* dst, const std::byte* const* srcs, std::size_t m,
                   std::size_t n, bool acc) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        uint8x16x4_t a;
        std::size_t s;
        if (acc) {
            a = load64(dst + i);
            s = 0;
        } else {
            a = load64(srcs[0] + i);
            s = 1;
        }
        for (; s < m; ++s) a = xor64(a, load64(srcs[s] + i));
        store64(dst + i, a);
    }
    xor_many_tail(dst, srcs, m, i, n, acc);
}

// ---------------------------------------------------------------------------
// Fused CRC sweeps. ASIMD is baseline on aarch64, but the CRC extension is
// not, so the lane sweep runs three interleaved crc32cx chains when the
// kernel reports HWCAP_CRC32 and falls back to the portable slice-by-8
// lanes otherwise. Lane values are identical either way — only the sweep
// speed differs.

#if defined(__linux__)

__attribute__((target("+crc"))) void crc3_neon_hw(
    const std::byte* src, std::size_t n, std::uint32_t lanes[3]) noexcept {
    const std::size_t lane = integrity::crc32c_lane_bytes(n);
    const std::byte* p0 = src;
    const std::byte* p1 = src + lane;
    const std::byte* p2 = src + 2 * lane;
    std::uint32_t c0 = 0, c1 = 0, c2 = 0;
    std::size_t i = 0;
    for (; i + 8 <= lane; i += 8) {
        std::uint64_t w0, w1, w2;
        std::memcpy(&w0, p0 + i, 8);
        std::memcpy(&w1, p1 + i, 8);
        std::memcpy(&w2, p2 + i, 8);
        c0 = __builtin_aarch64_crc32cx(c0, w0);
        c1 = __builtin_aarch64_crc32cx(c1, w1);
        c2 = __builtin_aarch64_crc32cx(c2, w2);
    }
    // lane is 8-byte aligned, so chains 0 and 1 are complete; finish the
    // long lane-2 chain word- then byte-wise.
    const std::size_t rem = n - 2 * lane;
    std::size_t j = i;
    for (; j + 8 <= rem; j += 8) {
        std::uint64_t w;
        std::memcpy(&w, p2 + j, 8);
        c2 = __builtin_aarch64_crc32cx(c2, w);
    }
    for (; j < rem; ++j) {
        c2 = __builtin_aarch64_crc32cb(c2,
                                       std::to_integer<unsigned char>(p2[j]));
    }
    lanes[0] = c0;
    lanes[1] = c1;
    lanes[2] = c2;
}

bool crc_extension_available() noexcept {
    static const bool available = (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
    return available;
}

#endif  // __linux__

void crc3_neon(const std::byte* src, std::size_t n,
               std::uint32_t lanes[3]) noexcept {
#if defined(__linux__)
    if (crc_extension_available()) {
        crc3_neon_hw(src, n, lanes);
        return;
    }
#endif
    const std::size_t lane = integrity::crc32c_lane_bytes(n);
    lanes[0] = integrity::crc32c_raw_software(0, src, lane);
    lanes[1] = integrity::crc32c_raw_software(0, src + lane, lane);
    lanes[2] =
        integrity::crc32c_raw_software(0, src + 2 * lane, n - 2 * lane);
}

void copy_crc3_neon(std::byte* dst, const std::byte* src, std::size_t n,
                    std::uint32_t lanes[3]) noexcept {
    std::memcpy(dst, src, n);
    crc3_neon(src, n, lanes);
}

void xor_many_crc3_neon(std::byte* dst, const std::byte* const* srcs,
                        std::size_t m, std::size_t n, bool acc,
                        std::uint32_t lanes[3]) noexcept {
    xor_many_neon(dst, srcs, m, n, acc);
    crc3_neon(dst, n, lanes);
}

}  // namespace

const kernel_table& neon_table() noexcept {
    static constexpr kernel_table table{
        "neon",        xor_into_neon, xor2_neon,
        xor_many_neon, /*xor_many_nt=*/nullptr,
        crc3_neon,     copy_crc3_neon, xor_many_crc3_neon};
    return table;
}

}  // namespace liberation::xorops::detail

#endif  // aarch64
