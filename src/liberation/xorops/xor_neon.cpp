// NEON (ASIMD) XOR kernel tier for aarch64, where ASIMD is part of the
// baseline ISA — no target attribute or runtime probe needed; the
// dispatcher still exposes it as a distinct tier so benches and tests can
// compare it against the scalar fallback. Compiles to nothing off-arm.
#if defined(__aarch64__)

#include <arm_neon.h>

#include "liberation/xorops/xor_kernels.hpp"

namespace liberation::xorops::detail {

namespace {

inline uint8x16x4_t load64(const std::byte* p) noexcept {
    return vld1q_u8_x4(reinterpret_cast<const std::uint8_t*>(p));
}

inline void store64(std::byte* p, uint8x16x4_t v) noexcept {
    vst1q_u8_x4(reinterpret_cast<std::uint8_t*>(p), v);
}

inline uint8x16x4_t xor64(uint8x16x4_t a, uint8x16x4_t b) noexcept {
    return {veorq_u8(a.val[0], b.val[0]), veorq_u8(a.val[1], b.val[1]),
            veorq_u8(a.val[2], b.val[2]), veorq_u8(a.val[3], b.val[3])};
}

void xor_into_neon(std::byte* dst, const std::byte* src,
                   std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        store64(dst + i, xor64(load64(dst + i), load64(src + i)));
    }
    const std::byte* srcs[1] = {src};
    xor_many_tail(dst, srcs, 1, i, n, /*acc=*/true);
}

void xor2_neon(std::byte* dst, const std::byte* a, const std::byte* b,
               std::size_t n) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        store64(dst + i, xor64(load64(a + i), load64(b + i)));
    }
    const std::byte* srcs[2] = {a, b};
    xor_many_tail(dst, srcs, 2, i, n, /*acc=*/false);
}

void xor_many_neon(std::byte* dst, const std::byte* const* srcs, std::size_t m,
                   std::size_t n, bool acc) noexcept {
    std::size_t i = 0;
    for (; i + 64 <= n; i += 64) {
        uint8x16x4_t a;
        std::size_t s;
        if (acc) {
            a = load64(dst + i);
            s = 0;
        } else {
            a = load64(srcs[0] + i);
            s = 1;
        }
        for (; s < m; ++s) a = xor64(a, load64(srcs[s] + i));
        store64(dst + i, a);
    }
    xor_many_tail(dst, srcs, m, i, n, acc);
}

}  // namespace

const kernel_table& neon_table() noexcept {
    static constexpr kernel_table table{"neon", xor_into_neon, xor2_neon,
                                        xor_many_neon};
    return table;
}

}  // namespace liberation::xorops::detail

#endif  // aarch64
