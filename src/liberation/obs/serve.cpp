#include "liberation/obs/serve.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

namespace liberation::obs {

namespace {

void send_all(int fd, const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n =
            ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n <= 0) return;
        off += static_cast<std::size_t>(n);
    }
}

std::string response(int code, const char* status, const char* ctype,
                     const std::string& body) {
    std::string out = "HTTP/1.1 " + std::to_string(code) + " " + status +
                      "\r\nContent-Type: " + ctype +
                      "\r\nContent-Length: " + std::to_string(body.size()) +
                      "\r\nConnection: close\r\n\r\n";
    out += body;
    return out;
}

}  // namespace

scrape_server::~scrape_server() { shutdown(); }

bool scrape_server::listen(std::uint16_t port, scrape_handlers handlers) {
    handlers_ = std::move(handlers);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd_, 8) != 0) {
        ::close(fd_);
        fd_ = -1;
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
        port_ = ntohs(addr.sin_port);
    }
    return true;
}

bool scrape_server::serve_one() {
    if (fd_ < 0 || stop_.load(std::memory_order_acquire)) return false;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) return false;

    // Read until the header terminator (requests have no body).
    std::string req;
    char buf[1024];
    while (req.find("\r\n\r\n") == std::string::npos && req.size() < 8192) {
        const ssize_t n = ::recv(client, buf, sizeof buf, 0);
        if (n <= 0) break;
        req.append(buf, static_cast<std::size_t>(n));
    }

    std::string path;
    if (req.compare(0, 4, "GET ") == 0) {
        const std::size_t sp = req.find(' ', 4);
        if (sp != std::string::npos) path = req.substr(4, sp - 4);
        const std::size_t q = path.find('?');
        if (q != std::string::npos) path.resize(q);
    }

    const auto run = [](const std::function<std::string()>& fn,
                        const char* fallback) {
        return fn ? fn() : std::string(fallback);
    };
    std::string resp;
    if (path == "/metrics") {
        resp = response(200, "OK", "text/plain; version=0.0.4",
                        run(handlers_.metrics, ""));
    } else if (path == "/healthz") {
        resp = response(200, "OK", "text/plain", run(handlers_.healthz, "ok\n"));
    } else if (path == "/trace") {
        resp = response(200, "OK", "application/json",
                        run(handlers_.trace, "{\"traceEvents\":[]}"));
    } else if (path.empty()) {
        resp = response(400, "Bad Request", "text/plain", "bad request\n");
    } else {
        resp = response(404, "Not Found", "text/plain", "not found\n");
    }
    send_all(client, resp);
    ::close(client);
    return true;
}

std::size_t scrape_server::serve(std::size_t max_requests) {
    std::size_t served = 0;
    while ((max_requests == 0 || served < max_requests) && serve_one()) {
        ++served;
    }
    return served;
}

void scrape_server::shutdown() noexcept {
    stop_.store(true, std::memory_order_release);
    if (fd_ >= 0) {
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
}

}  // namespace liberation::obs
