// SLO engine: declarative latency/error objectives evaluated over a
// sliding window of registry snapshots, exported as liberation_slo_*
// burn-rate and budget gauges and asserted by the chaos verdicts.
//
// An objective is either
//   * latency_quantile — "at most `budget` of the samples of histogram
//     `source` may exceed `threshold_ns` over the window". The existing
//     power-of-two buckets answer this exactly: a bucket is "good" only
//     when its upper bound is <= threshold, so a partially-covering
//     bucket counts as bad (conservative by construction); or
//   * event_ratio — "counter `source` may grow by at most `budget` of
//     counter `denominator`'s growth over the window" (budget 0 means
//     any increment violates).
//
// evaluate() snapshots the sources on the hub clock, slides the frame
// window, and computes per-objective burn rate = bad_fraction / budget:
// burn > 1.0 means the objective is violating right now. On a virtual
// clock every number is exactly reproducible, which is what makes the
// chaos verdict assertion and the window-math tests deterministic.
//
// Exported families (milli-units — gauges are integers):
//   liberation_slo_burn_rate_milli{objective="..."}
//   liberation_slo_budget_remaining_milli{objective="..."}
//   liberation_slo_violated{objective="..."}
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "liberation/obs/metrics.hpp"

namespace liberation::obs {

class hub;

struct slo_objective {
    enum class kind_t { latency_quantile, event_ratio };

    std::string name;  ///< exported as the objective label
    kind_t kind = kind_t::latency_quantile;
    /// Histogram name (latency_quantile) or numerator counter name
    /// (event_ratio), as registered — without the liberation_ prefix.
    std::string source;
    std::string denominator;       ///< event_ratio only
    std::uint64_t threshold_ns = 0;  ///< latency_quantile only
    double budget = 0.01;  ///< allowed bad fraction of the window
};

struct slo_status {
    std::string name;
    std::uint64_t window_total = 0;  ///< samples (or denominator growth)
    std::uint64_t window_bad = 0;    ///< over-threshold samples (or growth)
    double bad_fraction = 0.0;
    double burn_rate = 0.0;         ///< bad_fraction / budget
    double budget_remaining = 1.0;  ///< 1 - burn_rate, floored at -1000
    bool violated = false;          ///< burn_rate > 1 this window
};

class slo_engine {
public:
    /// `window_ns` is the sliding-window width on the hub's clock;
    /// `max_frames` bounds memory (oldest frames merge into the
    /// baseline). Objectives are fixed for the engine's lifetime.
    slo_engine(hub& h, std::vector<slo_objective> objectives,
               std::uint64_t window_ns = 1'000'000'000ull,
               std::size_t max_frames = 128);

    /// Snapshot sources, slide the window, recompute every objective,
    /// export the gauges, and append a flight-recorder event on each
    /// violation edge. Returns the fresh statuses.
    const std::vector<slo_status>& evaluate();

    [[nodiscard]] const std::vector<slo_status>& status() const noexcept {
        return status_;
    }
    /// No objective violated at the most recent evaluate().
    [[nodiscard]] bool all_ok() const noexcept;
    /// No objective violated at *any* evaluate() so far — what the chaos
    /// verdict asserts (a mid-campaign burn must fail the run even if the
    /// tail of the window recovered).
    [[nodiscard]] bool ever_violated() const noexcept {
        return ever_violated_;
    }

    /// Human/bundle rendering: one line per objective.
    [[nodiscard]] std::string text() const;

private:
    struct frame {
        std::uint64_t ts_ns = 0;
        /// Per-objective cumulative view at this instant.
        std::vector<latency_histogram::snapshot_t> hists;
        std::vector<std::uint64_t> num;
        std::vector<std::uint64_t> den;
    };

    frame capture();

    hub& hub_;
    std::vector<slo_objective> objectives_;
    std::uint64_t window_ns_;
    std::size_t max_frames_;
    std::deque<frame> frames_;
    std::vector<slo_status> status_;
    bool ever_violated_ = false;
};

}  // namespace liberation::obs
