// Always-on flight recorder: a process-wide bounded ring of structured
// state-transition events (disk trips, quarantines, hedges, intent-log
// marks, mount dispositions, unrecoverable reads) that costs a handful
// of relaxed atomic stores to append and never allocates. Unlike the
// span tracer it is *not* gated on a tracing flag: state transitions are
// rare and each one is exactly the breadcrumb a postmortem needs, so the
// recorder runs from process start and the newest kCapacity events are
// always available for a bundle dump (obs/postmortem.hpp).
//
// Concurrency protocol (TSan-clean, wait-free writers): a writer claims
// a slot index with one fetch_add, stores the payload into the slot's
// relaxed atomics, then publishes by storing the slot's sequence = index
// + 1 with release order. A reader walks the last kCapacity indices,
// acquires each slot's sequence, and keeps the record only if the
// sequence still matches the index — a slot mid-overwrite has either the
// old index (stale, skipped because it is outside the window) or a
// publish that postdates the read head (skipped as not-yet-complete).
// Readers never block writers; a record being overwritten concurrently
// is simply dropped from that snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace liberation::obs {

/// Structured event kinds. Append-only: postmortem bundles print the
/// symbolic name, so renumbering would desynchronize archived bundles.
enum class fr_kind : std::uint8_t {
    disk_tripped = 0,      ///< health monitor failed a disk (a = disk)
    disk_quarantined,      ///< latency monitor quarantined (a = disk)
    quarantine_lifted,     ///< probe came back on time (a = disk)
    hedge_issued,          ///< reconstruction hedge launched (a = disk)
    spare_promoted,        ///< hot spare took a dead slot (a = new disk)
    rebuild_completed,     ///< background rebuild session done (a = disk)
    intent_mark,           ///< write-hole journal marked (detail = stripe)
    intent_replayed,       ///< mount replayed a journaled stripe
    read_unrecoverable,    ///< verified read refused — data loss surface
    mount_ok,              ///< array/volume mount accepted (a = disks online)
    mount_refused,         ///< array/volume mount refused
    slo_violation,         ///< an objective burned through its budget
    verdict_failed,        ///< a chaos campaign failed its verdict
};

[[nodiscard]] const char* fr_kind_name(fr_kind k) noexcept;

struct fr_record {
    std::uint64_t ts_ns = 0;
    std::uint64_t trace_id = 0;  ///< ambient causal tree, 0 if none
    std::uint64_t detail = 0;    ///< kind-specific payload (stripe, count…)
    std::uint32_t a = 0;         ///< kind-specific subject (disk, shard…)
    fr_kind kind = fr_kind::disk_tripped;
};

class flight_recorder {
public:
    static constexpr std::size_t kCapacity = 4096;  // power of two

    /// The process-wide recorder every component appends to.
    [[nodiscard]] static flight_recorder& instance() noexcept;

    /// Append one event; `ts_ns` comes from the caller's hub clock so
    /// simulated time stays deterministic. The thread's ambient trace id
    /// is captured automatically.
    void record(fr_kind kind, std::uint64_t ts_ns, std::uint32_t a = 0,
                std::uint64_t detail = 0) noexcept;

    /// The newest <= kCapacity published records, oldest first.
    [[nodiscard]] std::vector<fr_record> snapshot() const;

    [[nodiscard]] std::uint64_t total() const noexcept {
        return head_.load(std::memory_order_acquire);
    }
    /// Events pushed out of the window by wrap.
    [[nodiscard]] std::uint64_t dropped() const noexcept {
        const std::uint64_t t = total();
        return t > kCapacity ? t - kCapacity : 0;
    }

    /// One line per record: "ts_ns kind a=N detail=N trace=N".
    [[nodiscard]] std::string text() const;

    /// Tests only: forget everything (not linearizable against writers).
    void reset() noexcept;

private:
    flight_recorder() = default;

    struct slot {
        std::atomic<std::uint64_t> seq{0};  ///< 0 = empty, else index + 1
        std::atomic<std::uint64_t> ts_ns{0};
        std::atomic<std::uint64_t> trace_id{0};
        std::atomic<std::uint64_t> detail{0};
        std::atomic<std::uint32_t> a{0};
        std::atomic<std::uint8_t> kind{0};
    };

    std::atomic<std::uint64_t> head_{0};
    slot slots_[kCapacity];
};

}  // namespace liberation::obs
