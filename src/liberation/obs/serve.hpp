// Minimal blocking HTTP/1.1 scrape endpoint: three GET routes served
// one connection at a time from whatever thread calls serve()/serve_one().
//
//   /metrics  -> Prometheus text exposition (handlers.metrics)
//   /healthz  -> short liveness body (handlers.healthz, default "ok\n")
//   /trace    -> Chrome trace JSON (handlers.trace)
//
// This is deliberately not a web server: no keep-alive, no TLS, no
// routing table — just enough HTTP for `curl`/Prometheus to scrape a
// running workload (`liberation_cli serve`, `chaos_campaign --listen`).
// The handlers are called on the serving thread while the workload
// mutates on another; every exporter surface they reach (metrics_text,
// trace_json, histogram snapshots) is already safe against concurrent
// recording — that contract is what the ObsConcurrency tests pin down.
//
// shutdown() closes the listening socket from any thread, which unblocks
// a pending accept and makes serve() return; serve(max_requests) bounds
// the loop for tests and CI scripts.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace liberation::obs {

struct scrape_handlers {
    std::function<std::string()> metrics;
    std::function<std::string()> healthz;
    std::function<std::string()> trace;
};

class scrape_server {
public:
    scrape_server() = default;
    ~scrape_server();

    scrape_server(const scrape_server&) = delete;
    scrape_server& operator=(const scrape_server&) = delete;

    /// Bind and listen on 127.0.0.1:`port` (0 = kernel-assigned; read the
    /// result from port()). False on any socket error.
    [[nodiscard]] bool listen(std::uint16_t port, scrape_handlers handlers);

    [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

    /// Accept and serve exactly one connection. False once the server is
    /// shut down (or was never listening).
    bool serve_one();

    /// Serve until `max_requests` connections (0 = until shutdown()).
    /// Returns the number of connections served.
    std::size_t serve(std::size_t max_requests = 0);

    /// Thread-safe: close the listening socket, unblocking any accept.
    void shutdown() noexcept;

private:
    int fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stop_{false};
    scrape_handlers handlers_;
};

}  // namespace liberation::obs
