// Postmortem bundles: one directory per incident holding everything a
// human (or CI assertion) needs to reconstruct what happened — the
// metrics exposition, the merged causal trace, the flight-recorder ring,
// an optional mount/superblock census, and a MANIFEST.json naming them.
//
// Dumps happen at three automatic trip points (a failed chaos verdict, a
// refused mount, the first unrecoverable read of an array) and on demand
// via tools/obs_dump. Automatic dumps are opt-in through the
// LIBERATION_POSTMORTEM_DIR environment variable so production hot paths
// never touch the filesystem unasked; each bundle lands in a fresh
// subdirectory <reason>-<seq> of that root (seq is a process counter,
// not wall time, so seeded runs stay byte-deterministic).
#pragma once

#include <string>

namespace liberation::obs {

class hub;

struct postmortem_bundle {
    std::string reason;        ///< "chaos_verdict", "mount_refused", ...
    std::string metrics_text;  ///< Prometheus exposition at dump time
    std::string trace_json;    ///< merged Chrome trace (may be empty)
    std::string census_text;   ///< mount/superblock census (may be empty)
    std::string slo_text;      ///< SLO status lines (may be empty)
};

/// Write `b` plus the current flight-recorder ring into `dir`
/// (created if missing): MANIFEST.json, metrics.prom, trace.json,
/// flight_recorder.log, census.txt, slo.txt — empty sections are
/// skipped and the manifest lists only what was written. Returns the
/// bundle directory, or "" on any filesystem error.
std::string write_postmortem(const std::string& dir,
                             const postmortem_bundle& b);

/// Automatic trip point: no-op (returns "") unless
/// LIBERATION_POSTMORTEM_DIR is set, else writes the bundle into
/// $LIBERATION_POSTMORTEM_DIR/<reason>-<seq>. When `h` is non-null its
/// metrics/trace fill any empty bundle sections.
std::string auto_postmortem(const std::string& reason, hub* h,
                            postmortem_bundle b = {});

}  // namespace liberation::obs
