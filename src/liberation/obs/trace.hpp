// Span tracer: begin/end events recorded into bounded per-thread ring
// buffers, flushed on demand into one globally time-ordered trace.
//
// Recording is two timestamp reads plus a ring store under a per-shard
// mutex that only the owning thread ever contends (threads are mapped to
// shards by a registration counter, so concurrent recorders hit disjoint
// shards in steady state). Each ring is bounded: once full, the oldest
// events are overwritten — a long run keeps the freshest window instead
// of growing without bound. Overwrites are counted (dropped()) and
// surfaced both as the liberation_obs_spans_dropped_total counter and as
// a metadata record in the exported trace, so a postmortem can tell a
// quiet system from a wrapped ring.
//
// Causal context: every span carries a (trace_id, span_id, parent_id)
// triple. A host op roots a trace at its entry point (the volume or
// array timed_span allocates a fresh trace_id when none is ambient) and
// the ids ride a thread-local — across thread hops (shard dispatchers,
// aio worker pools) the handoff is explicit via trace_scope. The ids are
// process-wide, so one causal tree can span several tracers (the volume
// hub's and every shard array's); merged_trace_json() joins them and
// renders parent links as Chrome flow events, giving one connected tree
// per host op in chrome://tracing / Perfetto.
//
// Tracing is off by default (enabled() is one relaxed load) so the hot
// paths pay a single predictable branch when nobody is looking. The
// export format is the Chrome trace_event JSON array-of-complete-events
// ("ph":"X") that chrome://tracing and Perfetto load directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace liberation::obs {

/// One completed span (or instant event when dur_ns == 0).
struct trace_event {
    const char* name = "";  ///< static string (callers pass literals)
    const char* cat = "";   ///< static category string
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
    std::uint64_t trace_id = 0;   ///< 0 = not part of a causal tree
    std::uint64_t span_id = 0;    ///< 0 = leaf instant (cannot be a parent)
    std::uint64_t parent_id = 0;  ///< 0 = root of its tree
};

/// The ambient causal position of a thread: the tree it is working for
/// and the span that any nested work should report as its parent.
struct trace_context {
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
};

/// Thread-local ambient context. Spans read it to find their parent;
/// cross-thread handoff (dispatcher lambdas, worker pools) captures it on
/// the submitting thread and reinstalls it with trace_scope.
[[nodiscard]] trace_context current_trace() noexcept;
void set_current_trace(trace_context ctx) noexcept;

/// Fresh process-wide ids (never 0). Cheap relaxed fetch_add.
[[nodiscard]] std::uint64_t next_trace_id() noexcept;
[[nodiscard]] std::uint64_t next_span_id() noexcept;

/// RAII: install `ctx` as this thread's ambient context, restore the
/// previous one on destruction. Used at every thread hop.
class trace_scope {
public:
    explicit trace_scope(trace_context ctx) noexcept : prev_(current_trace()) {
        set_current_trace(ctx);
    }
    trace_scope(const trace_scope&) = delete;
    trace_scope& operator=(const trace_scope&) = delete;
    ~trace_scope() { set_current_trace(prev_); }

private:
    trace_context prev_;
};

class tracer {
public:
    /// `ring_capacity` bounds each per-thread ring (events, not bytes).
    explicit tracer(std::size_t ring_capacity = 8192)
        : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

    tracer(const tracer&) = delete;
    tracer& operator=(const tracer&) = delete;

    void enable(bool on = true) noexcept {
        enabled_.store(on, std::memory_order_relaxed);
    }
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Record one completed span with the thread's ambient context as its
    /// parent. Callers are expected to gate on enabled() themselves
    /// (timed_span does); record() stores unconditionally so flushes and
    /// tests can inject events directly.
    void record(const char* name, const char* cat, std::uint64_t ts_ns,
                std::uint64_t dur_ns);

    /// Record with an explicit causal position: `parent` names the tree
    /// and parent span, `span_id` is this event's own id (0 for leaf
    /// instants). timed_span and the aio execute path use this because
    /// their own span must not be its own parent.
    void record_ex(const char* name, const char* cat, std::uint64_t ts_ns,
                   std::uint64_t dur_ns, trace_context parent,
                   std::uint64_t span_id);

    /// Flush every per-thread ring into one trace ordered by ts_ns.
    [[nodiscard]] std::vector<trace_event> ordered() const;

    /// Chrome trace_event JSON ({"traceEvents":[...]}; ts/dur in
    /// microseconds with ns remainder folded in as fractions). Parent
    /// links render as flow events; a wrapped ring adds an
    /// obs.spans_dropped metadata instant.
    [[nodiscard]] std::string trace_json() const;

    /// Events currently buffered across all rings (<= capacity * shards).
    [[nodiscard]] std::size_t size() const;

    /// Events overwritten by ring wrap since construction/clear().
    [[nodiscard]] std::uint64_t dropped() const;

    void clear();

private:
    static constexpr std::size_t kShards = 16;
    struct shard {
        mutable std::mutex mutex;
        std::vector<trace_event> ring;  ///< grows to capacity_, then wraps
        std::size_t next = 0;           ///< overwrite cursor once full
        std::uint64_t dropped = 0;      ///< events overwritten so far
    };

    shard& my_shard() const;

    std::size_t capacity_;
    std::atomic<bool> enabled_{false};
    mutable shard shards_[kShards];
};

/// One tracer's contribution to a merged trace: `process_name` becomes
/// the Chrome process label ("volume", "shard=\"2\"", ...).
struct trace_part {
    std::string process_name;
    const tracer* t = nullptr;
};

/// Interleave several tracers into one Chrome trace: part i renders as
/// pid i+1 with a process_name metadata record, events merge by
/// timestamp, and parent links are joined *across* parts (a shard span
/// whose parent lives in the volume tracer still connects). An empty
/// process_name suppresses the metadata record (the single-tracer form).
[[nodiscard]] std::string merged_trace_json(
    const std::vector<trace_part>& parts);

}  // namespace liberation::obs
