// Span tracer: begin/end events recorded into bounded per-thread ring
// buffers, flushed on demand into one globally time-ordered trace.
//
// Recording is two timestamp reads plus a ring store under a per-shard
// mutex that only the owning thread ever contends (threads are mapped to
// shards by a registration counter, so concurrent recorders hit disjoint
// shards in steady state). Each ring is bounded: once full, the oldest
// events are overwritten — a long run keeps the freshest window instead
// of growing without bound.
//
// Tracing is off by default (enabled() is one relaxed load) so the hot
// paths pay a single predictable branch when nobody is looking. The
// export format is the Chrome trace_event JSON array-of-complete-events
// ("ph":"X") that chrome://tracing and Perfetto load directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace liberation::obs {

/// One completed span (or instant event when dur_ns == 0).
struct trace_event {
    const char* name = "";  ///< static string (callers pass literals)
    const char* cat = "";   ///< static category string
    std::uint64_t ts_ns = 0;
    std::uint64_t dur_ns = 0;
    std::uint32_t tid = 0;
};

class tracer {
public:
    /// `ring_capacity` bounds each per-thread ring (events, not bytes).
    explicit tracer(std::size_t ring_capacity = 8192)
        : capacity_(ring_capacity == 0 ? 1 : ring_capacity) {}

    tracer(const tracer&) = delete;
    tracer& operator=(const tracer&) = delete;

    void enable(bool on = true) noexcept {
        enabled_.store(on, std::memory_order_relaxed);
    }
    [[nodiscard]] bool enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Record one completed span. Callers are expected to gate on
    /// enabled() themselves (timed_span does); record() stores
    /// unconditionally so flushes and tests can inject events directly.
    void record(const char* name, const char* cat, std::uint64_t ts_ns,
                std::uint64_t dur_ns);

    /// Flush every per-thread ring into one trace ordered by ts_ns.
    [[nodiscard]] std::vector<trace_event> ordered() const;

    /// Chrome trace_event JSON ({"traceEvents":[...]}; ts/dur in
    /// microseconds with ns remainder folded in as fractions).
    [[nodiscard]] std::string trace_json() const;

    /// Events currently buffered across all rings (<= capacity * shards).
    [[nodiscard]] std::size_t size() const;

    void clear();

private:
    static constexpr std::size_t kShards = 16;
    struct shard {
        mutable std::mutex mutex;
        std::vector<trace_event> ring;  ///< grows to capacity_, then wraps
        std::size_t next = 0;           ///< overwrite cursor once full
        std::uint64_t dropped = 0;      ///< events overwritten so far
    };

    shard& my_shard() const;

    std::size_t capacity_;
    std::atomic<bool> enabled_{false};
    mutable shard shards_[kShards];
};

}  // namespace liberation::obs
