#include "liberation/obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "liberation/obs/flight_recorder.hpp"
#include "liberation/obs/obs.hpp"

namespace liberation::obs {

slo_engine::slo_engine(hub& h, std::vector<slo_objective> objectives,
                       std::uint64_t window_ns, std::size_t max_frames)
    : hub_(h),
      objectives_(std::move(objectives)),
      window_ns_(window_ns),
      max_frames_(std::max<std::size_t>(2, max_frames)) {
    status_.resize(objectives_.size());
    for (std::size_t i = 0; i < objectives_.size(); ++i) {
        status_[i].name = objectives_[i].name;
    }
}

slo_engine::frame slo_engine::capture() {
    frame f;
    f.ts_ns = hub_.now_ns();
    f.hists.resize(objectives_.size());
    f.num.resize(objectives_.size(), 0);
    f.den.resize(objectives_.size(), 0);
    auto& m = hub_.metrics();
    for (std::size_t i = 0; i < objectives_.size(); ++i) {
        const slo_objective& o = objectives_[i];
        if (o.kind == slo_objective::kind_t::latency_quantile) {
            f.hists[i] = m.get_histogram(o.source).snapshot();
        } else {
            f.num[i] = m.get_counter(o.source).value();
            f.den[i] = o.denominator.empty()
                           ? 0
                           : m.get_counter(o.denominator).value();
        }
    }
    return f;
}

const std::vector<slo_status>& slo_engine::evaluate() {
    if (objectives_.empty()) return status_;
    // Mirror external counters into the registry first so event_ratio
    // objectives see fresh values (collect() is what metrics_text runs).
    hub_.collect();
    frame cur = capture();

    // Slide: the front frame is the baseline — the newest frame at or
    // before (now - window). Keep at least one frame as baseline.
    while (frames_.size() >= 2 && cur.ts_ns >= window_ns_ &&
           frames_[1].ts_ns <= cur.ts_ns - window_ns_) {
        frames_.pop_front();
    }
    while (frames_.size() >= max_frames_) frames_.pop_front();
    const frame& base = frames_.empty() ? cur : frames_.front();

    for (std::size_t i = 0; i < objectives_.size(); ++i) {
        const slo_objective& o = objectives_[i];
        slo_status& st = status_[i];
        std::uint64_t total = 0;
        std::uint64_t bad = 0;
        if (o.kind == slo_objective::kind_t::latency_quantile) {
            const auto& c = cur.hists[i];
            const auto& b = base.hists[i];
            total = c.count - b.count;
            std::uint64_t good = 0;
            for (std::size_t k = 0; k < latency_histogram::kBuckets; ++k) {
                if (latency_histogram::bucket_upper(k) > o.threshold_ns) {
                    break;
                }
                good += c.buckets[k] - b.buckets[k];
            }
            bad = total - std::min(good, total);
        } else {
            bad = cur.num[i] - base.num[i];
            total = cur.den[i] - base.den[i];
            if (o.denominator.empty()) total = std::max(total, bad);
        }
        st.window_total = total;
        st.window_bad = bad;
        st.bad_fraction =
            total == 0 ? 0.0
                       : static_cast<double>(bad) / static_cast<double>(total);
        if (o.budget <= 0.0) {
            // Zero budget: any bad event is an immediate page.
            st.burn_rate = bad != 0 ? 1000.0 : 0.0;
        } else {
            st.burn_rate = st.bad_fraction / o.budget;
        }
        st.budget_remaining = std::max(1.0 - st.burn_rate, -1000.0);
        const bool was = st.violated;
        st.violated = st.burn_rate > 1.0;
        if (st.violated) ever_violated_ = true;
        if (st.violated && !was) {
            flight_recorder::instance().record(
                fr_kind::slo_violation, cur.ts_ns,
                static_cast<std::uint32_t>(i), st.window_bad);
        }

        const std::string label = "objective=\"" + o.name + "\"";
        auto& m = hub_.metrics();
        m.get_labeled_gauge("slo_burn_rate_milli", label,
                            "per-objective burn rate x1000 (>1000 = "
                            "violating its error budget)")
            .set(static_cast<std::int64_t>(std::llround(
                std::min(st.burn_rate, 1e6) * 1000.0)));
        m.get_labeled_gauge("slo_budget_remaining_milli", label,
                            "per-objective remaining error budget x1000")
            .set(static_cast<std::int64_t>(
                std::llround(st.budget_remaining * 1000.0)));
        m.get_labeled_gauge("slo_violated", label,
                            "1 while the objective is out of budget")
            .set(st.violated ? 1 : 0);
    }

    frames_.push_back(std::move(cur));
    return status_;
}

bool slo_engine::all_ok() const noexcept {
    return std::none_of(status_.begin(), status_.end(),
                        [](const slo_status& s) { return s.violated; });
}

std::string slo_engine::text() const {
    std::string out;
    char buf[224];
    for (const slo_status& s : status_) {
        std::snprintf(buf, sizeof buf,
                      "slo %s: total=%llu bad=%llu burn=%.3f "
                      "budget_remaining=%.3f violated=%d\n",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.window_total),
                      static_cast<unsigned long long>(s.window_bad),
                      s.burn_rate, s.budget_remaining, s.violated ? 1 : 0);
        out += buf;
    }
    return out;
}

}  // namespace liberation::obs
