#include "liberation/obs/flight_recorder.hpp"

#include <cstdio>

#include "liberation/obs/trace.hpp"

namespace liberation::obs {

const char* fr_kind_name(fr_kind k) noexcept {
    switch (k) {
        case fr_kind::disk_tripped: return "disk_tripped";
        case fr_kind::disk_quarantined: return "disk_quarantined";
        case fr_kind::quarantine_lifted: return "quarantine_lifted";
        case fr_kind::hedge_issued: return "hedge_issued";
        case fr_kind::spare_promoted: return "spare_promoted";
        case fr_kind::rebuild_completed: return "rebuild_completed";
        case fr_kind::intent_mark: return "intent_mark";
        case fr_kind::intent_replayed: return "intent_replayed";
        case fr_kind::read_unrecoverable: return "read_unrecoverable";
        case fr_kind::mount_ok: return "mount_ok";
        case fr_kind::mount_refused: return "mount_refused";
        case fr_kind::slo_violation: return "slo_violation";
        case fr_kind::verdict_failed: return "verdict_failed";
    }
    return "unknown";
}

flight_recorder& flight_recorder::instance() noexcept {
    static flight_recorder r;
    return r;
}

void flight_recorder::record(fr_kind kind, std::uint64_t ts_ns,
                             std::uint32_t a, std::uint64_t detail) noexcept {
    const std::uint64_t idx = head_.fetch_add(1, std::memory_order_acq_rel);
    slot& s = slots_[idx % kCapacity];
    // Invalidate first so a racing reader never pairs the new payload
    // with the old sequence, then publish with release.
    s.seq.store(0, std::memory_order_release);
    s.ts_ns.store(ts_ns, std::memory_order_relaxed);
    s.trace_id.store(current_trace().trace_id, std::memory_order_relaxed);
    s.detail.store(detail, std::memory_order_relaxed);
    s.a.store(a, std::memory_order_relaxed);
    s.kind.store(static_cast<std::uint8_t>(kind), std::memory_order_relaxed);
    s.seq.store(idx + 1, std::memory_order_release);
}

std::vector<fr_record> flight_recorder::snapshot() const {
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    const std::uint64_t lo = h > kCapacity ? h - kCapacity : 0;
    std::vector<fr_record> out;
    out.reserve(static_cast<std::size_t>(h - lo));
    for (std::uint64_t i = lo; i < h; ++i) {
        const slot& s = slots_[i % kCapacity];
        if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
        fr_record r;
        r.ts_ns = s.ts_ns.load(std::memory_order_relaxed);
        r.trace_id = s.trace_id.load(std::memory_order_relaxed);
        r.detail = s.detail.load(std::memory_order_relaxed);
        r.a = s.a.load(std::memory_order_relaxed);
        r.kind = static_cast<fr_kind>(s.kind.load(std::memory_order_relaxed));
        // Re-check: if a writer claimed this slot mid-read the payload may
        // be mixed — drop it (it was being overwritten, i.e. ancient).
        if (s.seq.load(std::memory_order_acquire) != i + 1) continue;
        out.push_back(r);
    }
    return out;
}

std::string flight_recorder::text() const {
    const std::vector<fr_record> recs = snapshot();
    std::string out;
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "# flight_recorder total=%llu dropped=%llu shown=%zu\n",
                  static_cast<unsigned long long>(total()),
                  static_cast<unsigned long long>(dropped()), recs.size());
    out += buf;
    for (const fr_record& r : recs) {
        std::snprintf(buf, sizeof buf,
                      "%llu %s a=%u detail=%llu trace=%llu\n",
                      static_cast<unsigned long long>(r.ts_ns),
                      fr_kind_name(r.kind), r.a,
                      static_cast<unsigned long long>(r.detail),
                      static_cast<unsigned long long>(r.trace_id));
        out += buf;
    }
    return out;
}

void flight_recorder::reset() noexcept {
    head_.store(0, std::memory_order_release);
    for (slot& s : slots_) s.seq.store(0, std::memory_order_release);
}

}  // namespace liberation::obs
