#include "liberation/obs/metrics.hpp"

#include <stdexcept>

namespace liberation::obs {

registry::entry& registry::get_entry(const std::string& name, kind k,
                                     std::string help) {
    return get_entry_impl(name, "", "", k, std::move(help));
}

registry::entry& registry::get_entry_impl(const std::string& name,
                                          const std::string& family,
                                          const std::string& labels, kind k,
                                          std::string help) {
    std::lock_guard lock(mutex_);
    auto it = metrics_.find(name);
    if (it == metrics_.end()) {
        entry e;
        e.k = k;
        e.help = std::move(help);
        e.family = family;
        e.labels = labels;
        switch (k) {
            case kind::counter_k:
                e.c = std::make_unique<counter>();
                break;
            case kind::gauge_k:
                e.g = std::make_unique<gauge>();
                break;
            case kind::histogram_k:
                e.h = std::make_unique<latency_histogram>();
                break;
        }
        it = metrics_.emplace(name, std::move(e)).first;
    } else if (it->second.k != k) {
        throw std::logic_error("obs::registry: metric '" + name +
                               "' registered with a different kind");
    }
    return it->second;
}

registry::entry& registry::get_labeled_entry(const std::string& family,
                                             const std::string& labels,
                                             kind k, std::string help) {
    return get_entry_impl(family + "{" + labels + "}", family, labels, k,
                          std::move(help));
}

counter& registry::get_counter(const std::string& name, std::string help) {
    return *get_entry(name, kind::counter_k, std::move(help)).c;
}

counter& registry::get_labeled_counter(const std::string& family,
                                       const std::string& labels,
                                       std::string help) {
    return *get_labeled_entry(family, labels, kind::counter_k, std::move(help))
                .c;
}

gauge& registry::get_labeled_gauge(const std::string& family,
                                   const std::string& labels,
                                   std::string help) {
    return *get_labeled_entry(family, labels, kind::gauge_k, std::move(help))
                .g;
}

gauge& registry::get_gauge(const std::string& name, std::string help) {
    return *get_entry(name, kind::gauge_k, std::move(help)).g;
}

latency_histogram& registry::get_histogram(const std::string& name,
                                           std::string help) {
    return *get_entry(name, kind::histogram_k, std::move(help)).h;
}

std::string registry::metrics_text(const std::string& prefix) const {
    std::lock_guard lock(mutex_);
    std::string out;
    out.reserve(metrics_.size() * 128);
    const auto line = [&out](const std::string& name, std::uint64_t v) {
        out += name;
        out += ' ';
        out += std::to_string(v);
        out += '\n';
    };
    std::string last_labeled_family;
    for (const auto& [name, e] : metrics_) {
        if (!e.family.empty()) {
            // Labeled series: one header per family (series are
            // contiguous in map order), then family{labels} samples.
            const std::string fam = prefix + e.family;
            if (e.family != last_labeled_family) {
                last_labeled_family = e.family;
                if (!e.help.empty()) {
                    out += "# HELP " + fam + ' ' + e.help + '\n';
                }
                out += "# TYPE " + fam +
                       (e.k == kind::counter_k ? " counter\n" : " gauge\n");
            }
            out += fam + '{' + e.labels + '}';
            out += ' ';
            out += e.k == kind::counter_k ? std::to_string(e.c->value())
                                          : std::to_string(e.g->value());
            out += '\n';
            continue;
        }
        const std::string full = prefix + name;
        if (!e.help.empty()) {
            out += "# HELP " + full + ' ' + e.help + '\n';
        }
        switch (e.k) {
            case kind::counter_k:
                out += "# TYPE " + full + " counter\n";
                line(full, e.c->value());
                break;
            case kind::gauge_k:
                out += "# TYPE " + full + " gauge\n";
                out += full;
                out += ' ';
                out += std::to_string(e.g->value());
                out += '\n';
                break;
            case kind::histogram_k: {
                const latency_histogram::snapshot_t s = e.h->snapshot();
                out += "# TYPE " + full + " summary\n";
                line(full + "{quantile=\"0.5\"}", s.p50);
                line(full + "{quantile=\"0.95\"}", s.p95);
                line(full + "{quantile=\"0.99\"}", s.p99);
                line(full + "_sum", s.sum);
                line(full + "_count", s.count);
                out += "# TYPE " + full + "_max gauge\n";
                line(full + "_max", s.max);
                // Exemplar as a comment line: links the tail to a causal
                // trace id without adding a sample line scrapers must
                // understand (the classic text format has no exemplars).
                if (const std::uint64_t ex = e.h->exemplar_trace(); ex != 0) {
                    out += "# EXEMPLAR " + full + " trace_id=" +
                           std::to_string(ex) + " value=" +
                           std::to_string(e.h->exemplar_value()) + '\n';
                }
                break;
            }
        }
    }
    return out;
}

std::vector<std::pair<std::string, latency_histogram::snapshot_t>>
registry::histogram_snapshots() const {
    std::lock_guard lock(mutex_);
    std::vector<std::pair<std::string, latency_histogram::snapshot_t>> out;
    for (const auto& [name, e] : metrics_) {
        if (e.k == kind::histogram_k) {
            out.emplace_back(name, e.h->snapshot());
        }
    }
    return out;
}

}  // namespace liberation::obs
