#include "liberation/obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace liberation::obs {

namespace {

/// Process-wide small integer per thread: stable tids for the trace and
/// the shard mapping (shared across tracer instances — a thread keeps one
/// identity no matter which array's tracer it records into).
std::uint32_t this_thread_id() {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

}  // namespace

tracer::shard& tracer::my_shard() const {
    return shards_[this_thread_id() % kShards];
}

void tracer::record(const char* name, const char* cat, std::uint64_t ts_ns,
                    std::uint64_t dur_ns) {
    trace_event ev{name, cat, ts_ns, dur_ns, this_thread_id()};
    shard& s = my_shard();
    std::lock_guard lock(s.mutex);
    if (s.ring.size() < capacity_) {
        s.ring.push_back(ev);
        return;
    }
    // Bounded: overwrite the oldest event (freshest-window semantics).
    s.ring[s.next] = ev;
    s.next = (s.next + 1) % capacity_;
    ++s.dropped;
}

std::vector<trace_event> tracer::ordered() const {
    std::vector<trace_event> out;
    for (const shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        out.insert(out.end(), s.ring.begin(), s.ring.end());
    }
    std::sort(out.begin(), out.end(),
              [](const trace_event& a, const trace_event& b) {
                  return a.ts_ns < b.ts_ns;
              });
    return out;
}

std::string tracer::trace_json() const {
    const std::vector<trace_event> events = ordered();
    std::string out = "{\"traceEvents\":[";
    char buf[256];
    for (std::size_t i = 0; i < events.size(); ++i) {
        const trace_event& e = events[i];
        // Chrome's ts/dur unit is microseconds; keep ns as fractions so
        // the sub-microsecond simulated I/O stays visible.
        std::snprintf(buf, sizeof buf,
                      "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                      i != 0 ? "," : "", e.name, e.cat,
                      static_cast<double>(e.ts_ns) / 1e3,
                      static_cast<double>(e.dur_ns) / 1e3, e.tid);
        out += buf;
    }
    out += "]}";
    return out;
}

std::size_t tracer::size() const {
    std::size_t n = 0;
    for (const shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        n += s.ring.size();
    }
    return n;
}

void tracer::clear() {
    for (shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        s.ring.clear();
        s.next = 0;
        s.dropped = 0;
    }
}

}  // namespace liberation::obs
