#include "liberation/obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_map>

namespace liberation::obs {

namespace {

/// Process-wide small integer per thread: stable tids for the trace and
/// the shard mapping (shared across tracer instances — a thread keeps one
/// identity no matter which array's tracer it records into).
std::uint32_t this_thread_id() {
    static std::atomic<std::uint32_t> next{0};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

thread_local trace_context t_current{};

std::atomic<std::uint64_t> g_next_trace{1};
std::atomic<std::uint64_t> g_next_span{1};

}  // namespace

trace_context current_trace() noexcept { return t_current; }

void set_current_trace(trace_context ctx) noexcept { t_current = ctx; }

std::uint64_t next_trace_id() noexcept {
    return g_next_trace.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t next_span_id() noexcept {
    return g_next_span.fetch_add(1, std::memory_order_relaxed);
}

tracer::shard& tracer::my_shard() const {
    return shards_[this_thread_id() % kShards];
}

void tracer::record(const char* name, const char* cat, std::uint64_t ts_ns,
                    std::uint64_t dur_ns) {
    record_ex(name, cat, ts_ns, dur_ns, t_current, 0);
}

void tracer::record_ex(const char* name, const char* cat, std::uint64_t ts_ns,
                       std::uint64_t dur_ns, trace_context parent,
                       std::uint64_t span_id) {
    trace_event ev{name,     cat,             ts_ns,   dur_ns,
                   this_thread_id(), parent.trace_id, span_id, parent.span_id};
    shard& s = my_shard();
    std::lock_guard lock(s.mutex);
    if (s.ring.size() < capacity_) {
        s.ring.push_back(ev);
        return;
    }
    // Bounded: overwrite the oldest event (freshest-window semantics).
    s.ring[s.next] = ev;
    s.next = (s.next + 1) % capacity_;
    ++s.dropped;
}

std::vector<trace_event> tracer::ordered() const {
    std::vector<trace_event> out;
    for (const shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        out.insert(out.end(), s.ring.begin(), s.ring.end());
    }
    std::sort(out.begin(), out.end(),
              [](const trace_event& a, const trace_event& b) {
                  return a.ts_ns < b.ts_ns;
              });
    return out;
}

std::string tracer::trace_json() const {
    return merged_trace_json({trace_part{std::string(), this}});
}

std::size_t tracer::size() const {
    std::size_t n = 0;
    for (const shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        n += s.ring.size();
    }
    return n;
}

std::uint64_t tracer::dropped() const {
    std::uint64_t n = 0;
    for (const shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        n += s.dropped;
    }
    return n;
}

void tracer::clear() {
    for (shard& s : shards_) {
        std::lock_guard lock(s.mutex);
        s.ring.clear();
        s.next = 0;
        s.dropped = 0;
    }
}

namespace {

/// A merged event remembers which part (pid) it came from.
struct placed_event {
    trace_event e;
    std::uint32_t pid;
};

/// Process names may carry label-style quoting (shard="3"); span/cat
/// names are compile-time literals and never need this.
std::string json_escape(const std::string& s) {
    std::string r;
    r.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') r += '\\';
        r += c;
    }
    return r;
}

}  // namespace

std::string merged_trace_json(const std::vector<trace_part>& parts) {
    std::string out = "{\"traceEvents\":[";
    char buf[384];
    bool first = true;
    const auto emit = [&out, &first](const char* s) {
        if (!first) out += ',';
        first = false;
        out += s;
    };

    // Process metadata + ring-wrap disclosure, one record per part.
    std::vector<placed_event> events;
    for (std::size_t p = 0; p < parts.size(); ++p) {
        const auto pid = static_cast<std::uint32_t>(p + 1);
        if (!parts[p].process_name.empty()) {
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"process_name\",\"ph\":\"M\","
                          "\"pid\":%u,\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                          pid, json_escape(parts[p].process_name).c_str());
            emit(buf);
        }
        if (parts[p].t == nullptr) continue;
        if (const std::uint64_t dropped = parts[p].t->dropped();
            dropped != 0) {
            // The ring wrapped: this trace is the freshest window, not the
            // whole run. Postmortem readers check for this record.
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"obs.spans_dropped\",\"cat\":\"obs\","
                          "\"ph\":\"I\",\"s\":\"p\",\"ts\":0.000,\"pid\":%u,"
                          "\"tid\":0,\"args\":{\"dropped\":%llu}}",
                          pid, static_cast<unsigned long long>(dropped));
            emit(buf);
        }
        for (const trace_event& e : parts[p].t->ordered()) {
            events.push_back({e, pid});
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const placed_event& a, const placed_event& b) {
                         return a.e.ts_ns < b.e.ts_ns;
                     });

    // Spans by id, so parent links can be joined across parts.
    std::unordered_map<std::uint64_t, const placed_event*> by_span;
    for (const placed_event& pe : events) {
        if (pe.e.span_id != 0) by_span.emplace(pe.e.span_id, &pe);
    }

    for (const placed_event& pe : events) {
        const trace_event& e = pe.e;
        // Chrome's ts/dur unit is microseconds; keep ns as fractions so
        // the sub-microsecond simulated I/O stays visible.
        int n = std::snprintf(
            buf, sizeof buf,
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
            "\"ts\":%.3f,\"dur\":%.3f,\"pid\":%u,\"tid\":%u",
            e.name, e.cat, static_cast<double>(e.ts_ns) / 1e3,
            static_cast<double>(e.dur_ns) / 1e3, pe.pid, e.tid);
        if (e.trace_id != 0 && n > 0 &&
            static_cast<std::size_t>(n) < sizeof buf) {
            n += std::snprintf(
                buf + n, sizeof buf - static_cast<std::size_t>(n),
                ",\"args\":{\"trace\":\"%llu\",\"span\":\"%llu\","
                "\"parent\":\"%llu\"}",
                static_cast<unsigned long long>(e.trace_id),
                static_cast<unsigned long long>(e.span_id),
                static_cast<unsigned long long>(e.parent_id));
        }
        if (n > 0 && static_cast<std::size_t>(n) + 1 < sizeof buf) {
            buf[n] = '}';
            buf[n + 1] = '\0';
        }
        emit(buf);
    }

    // Parent links as flow events: a step ("s") on the parent's track
    // bound ("f") to the child, so chrome://tracing draws the causal tree
    // across pids/tids. Flow ids must be unique per edge; the child's
    // span id is, and leaf instants borrow from a disjoint range.
    std::uint64_t leaf_flow = ~std::uint64_t{0};
    for (const placed_event& pe : events) {
        const trace_event& e = pe.e;
        if (e.parent_id == 0) continue;
        const auto it = by_span.find(e.parent_id);
        if (it == by_span.end()) continue;  // parent fell off its ring
        const placed_event& par = *it->second;
        const std::uint64_t id = e.span_id != 0 ? e.span_id : leaf_flow--;
        // The step must sit inside the parent slice for the viewer to
        // attach it: clamp the child's start into the parent interval.
        const std::uint64_t s_ts =
            std::clamp(e.ts_ns, par.e.ts_ns, par.e.ts_ns + par.e.dur_ns);
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"causal\",\"cat\":\"obs\",\"ph\":\"s\","
                      "\"id\":%llu,\"ts\":%.3f,\"pid\":%u,\"tid\":%u}",
                      static_cast<unsigned long long>(id),
                      static_cast<double>(s_ts) / 1e3, par.pid, par.e.tid);
        emit(buf);
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"causal\",\"cat\":\"obs\",\"ph\":\"f\","
                      "\"bp\":\"e\",\"id\":%llu,\"ts\":%.3f,\"pid\":%u,"
                      "\"tid\":%u}",
                      static_cast<unsigned long long>(id),
                      static_cast<double>(e.ts_ns) / 1e3, pe.pid, e.tid);
        emit(buf);
    }

    out += "]}";
    return out;
}

}  // namespace liberation::obs
