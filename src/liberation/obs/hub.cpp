#include "liberation/obs/obs.hpp"

namespace liberation::obs {

std::uint64_t steady_now_ns(const void* /*ctx*/) noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace liberation::obs
