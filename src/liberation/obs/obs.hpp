// Observability hub: one registry + one tracer + one time source, owned
// per instrumented component (each raid6_array has its own, so two arrays
// in one process never mix their latency distributions).
//
// Time source: real runs read the steady clock; tests and simulations
// plug in the array's virtual microsecond clock (raid::virtual_clock via
// set_clock) so every latency a histogram sees is deterministic — retry backoff charges the virtual
// clock, so a retried op's span *is* its backoff. The source is a
// function pointer + context read with relaxed atomics: swapping clocks
// is rare, reading them is wait-free.
//
// Collectors: components whose counters already live elsewhere (the
// array's atomic_stats, the io_policy, the aio engine) register a
// collector that mirrors those atomics into registry counters right
// before export — one metrics_text() call shows the whole system without
// double-counting on the hot paths.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "liberation/obs/metrics.hpp"
#include "liberation/obs/trace.hpp"

namespace liberation::obs {

/// Time source: returns nanoseconds from an arbitrary epoch. Must be
/// thread-safe; `ctx` is the source's state (null for the steady clock).
using now_fn = std::uint64_t (*)(const void* ctx);

[[nodiscard]] std::uint64_t steady_now_ns(const void* /*ctx*/) noexcept;

class hub {
public:
    hub() = default;
    hub(const hub&) = delete;
    hub& operator=(const hub&) = delete;

    [[nodiscard]] registry& metrics() noexcept { return registry_; }
    [[nodiscard]] const registry& metrics() const noexcept {
        return registry_;
    }
    [[nodiscard]] tracer& trace() noexcept { return tracer_; }
    [[nodiscard]] const tracer& trace() const noexcept { return tracer_; }

    /// Swap the time source (defaults to the steady clock). `ctx` must
    /// outlive the hub.
    void set_clock(now_fn fn, const void* ctx) noexcept {
        clock_ctx_.store(ctx, std::memory_order_relaxed);
        clock_fn_.store(fn, std::memory_order_release);
    }

    [[nodiscard]] std::uint64_t now_ns() const noexcept {
        if constexpr (!kEnabled) return 0;
        const now_fn fn = clock_fn_.load(std::memory_order_acquire);
        return fn(clock_ctx_.load(std::memory_order_relaxed));
    }

    /// Register a pre-export hook that mirrors external atomics into the
    /// registry (see file comment). Runs inside metrics_text().
    void add_collector(std::function<void()> fn) {
        std::lock_guard lock(collectors_mutex_);
        collectors_.push_back(std::move(fn));
    }

    /// Run collectors, then render the Prometheus-style exposition.
    [[nodiscard]] std::string metrics_text(
        const std::string& prefix = "liberation_") {
        collect();
        return registry_.metrics_text(prefix);
    }

    /// Run collectors, then snapshot every histogram (for structured
    /// consumers that don't want to parse the text form).
    [[nodiscard]] std::vector<
        std::pair<std::string, latency_histogram::snapshot_t>>
    histogram_snapshots() {
        collect();
        return registry_.histogram_snapshots();
    }

    [[nodiscard]] std::string trace_json() const {
        return tracer_.trace_json();
    }

    void collect() {
        std::lock_guard lock(collectors_mutex_);
        for (const auto& fn : collectors_) fn();
        if constexpr (kEnabled) {
            // Ring-wrap disclosure: a postmortem reading this exposition
            // can tell "no events" from "the trace ring wrapped".
            registry_
                .get_counter("obs_spans_dropped_total",
                             "trace spans overwritten by ring wrap")
                .mirror(tracer_.dropped());
        }
    }

private:
    registry registry_;
    tracer tracer_;
    std::atomic<now_fn> clock_fn_{&steady_now_ns};
    std::atomic<const void*> clock_ctx_{nullptr};
    std::mutex collectors_mutex_;
    std::vector<std::function<void()>> collectors_;
};

/// RAII span: times [construction, destruction) on the hub's clock,
/// records the duration into `hist` (when non-null), and emits a Chrome
/// trace event when tracing is enabled. Compiled out entirely with
/// LIBERATION_OBS_DISABLED. `name`/`cat` must be string literals (the
/// tracer stores the pointers).
///
/// Causal context: with tracing on, construction allocates a span id,
/// roots a fresh trace when the thread has no ambient one (this is how a
/// host op entering the volume or array starts its tree), and installs
/// itself as the thread's current parent — every span, instant, or
/// flight-recorder event nested inside reports this span as its parent.
/// Destruction restores the previous context, records the event with its
/// ids, and notes the trace id as the histogram's tail exemplar.
class timed_span {
public:
    timed_span(hub& h, latency_histogram* hist, const char* name,
               const char* cat = "raid") noexcept
        : hub_(&h), hist_(hist), name_(name), cat_(cat) {
        if constexpr (kEnabled) {
            begin_ = h.now_ns();
            if (h.trace().enabled()) {
                parent_ = current_trace();
                self_.trace_id = parent_.trace_id != 0 ? parent_.trace_id
                                                       : next_trace_id();
                self_.span_id = next_span_id();
                set_current_trace(self_);
            }
        }
    }

    timed_span(const timed_span&) = delete;
    timed_span& operator=(const timed_span&) = delete;

    ~timed_span() {
        if constexpr (!kEnabled) return;
        const std::uint64_t end = hub_->now_ns();
        const std::uint64_t dur = end >= begin_ ? end - begin_ : 0;
        if (hist_ != nullptr) {
            hist_->record(dur);
            hist_->note_exemplar(dur, self_.trace_id);
        }
        if (self_.trace_id != 0) {
            set_current_trace(parent_);
            // The record's context names *this span's* tree and its parent
            // span: a root (no ambient tree at construction) still belongs
            // to the tree it created, with parent span 0.
            hub_->trace().record_ex(name_, cat_, begin_, dur,
                                    trace_context{self_.trace_id,
                                                  parent_.span_id},
                                    self_.span_id);
        } else if (hub_->trace().enabled()) {
            hub_->trace().record(name_, cat_, begin_, dur);
        }
    }

private:
    hub* hub_;
    latency_histogram* hist_;
    const char* name_;
    const char* cat_;
    std::uint64_t begin_ = 0;
    trace_context parent_{};
    trace_context self_{};
};

}  // namespace liberation::obs
