#include "liberation/obs/postmortem.hpp"

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "liberation/obs/flight_recorder.hpp"
#include "liberation/obs/obs.hpp"

namespace liberation::obs {

namespace {

bool ensure_dir(const std::string& path) {
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0) return S_ISDIR(st.st_mode);
    // Create missing parents too: bundle roots are often nested paths
    // that don't exist yet (LIBERATION_POSTMORTEM_DIR=artifacts/pm).
    const std::size_t slash = path.find_last_of('/');
    if (slash != std::string::npos && slash != 0) {
        if (!ensure_dir(path.substr(0, slash))) return false;
    }
    if (::mkdir(path.c_str(), 0755) == 0) return true;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool write_file(const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const bool ok =
        body.empty() || std::fwrite(body.data(), 1, body.size(), f) ==
                            body.size();
    return std::fclose(f) == 0 && ok;
}

/// JSON string escaping for the manifest (reasons/errors may hold
/// arbitrary text from mount reports).
std::string jesc(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string write_postmortem(const std::string& dir,
                             const postmortem_bundle& b) {
    if (!ensure_dir(dir)) return "";
    const flight_recorder& fr = flight_recorder::instance();

    std::string files = "\"flight_recorder.log\"";
    if (!write_file(dir + "/flight_recorder.log", fr.text())) return "";
    const auto section = [&](const char* name, const std::string& body) {
        if (body.empty()) return true;
        if (!write_file(dir + "/" + name, body)) return false;
        files += ",\"";
        files += name;
        files += '"';
        return true;
    };
    if (!section("metrics.prom", b.metrics_text)) return "";
    if (!section("trace.json", b.trace_json)) return "";
    if (!section("census.txt", b.census_text)) return "";
    if (!section("slo.txt", b.slo_text)) return "";

    char head[256];
    std::snprintf(head, sizeof head,
                  "{\"reason\":\"%s\",\"flight_records\":%llu,"
                  "\"flight_dropped\":%llu,\"files\":[",
                  jesc(b.reason).c_str(),
                  static_cast<unsigned long long>(fr.total()),
                  static_cast<unsigned long long>(fr.dropped()));
    if (!write_file(dir + "/MANIFEST.json",
                    std::string(head) + files + "]}\n")) {
        return "";
    }
    return dir;
}

std::string auto_postmortem(const std::string& reason, hub* h,
                            postmortem_bundle b) {
    const char* root = std::getenv("LIBERATION_POSTMORTEM_DIR");
    if (root == nullptr || root[0] == '\0') return "";
    if (!ensure_dir(root)) return "";
    b.reason = reason;
    if (h != nullptr) {
        if (b.metrics_text.empty()) b.metrics_text = h->metrics_text();
        if (b.trace_json.empty()) b.trace_json = h->trace_json();
    }
    static std::atomic<std::uint64_t> seq{0};
    const std::uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
    return write_postmortem(
        std::string(root) + "/" + reason + "-" + std::to_string(n), b);
}

}  // namespace liberation::obs
