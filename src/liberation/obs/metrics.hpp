// Lock-cheap metrics registry: named monotonic counters, gauges, and
// fixed-bucket power-of-two latency histograms.
//
// Hot paths hold references obtained once from the registry (registration
// takes a mutex, updates are relaxed atomics on stable storage), so
// recording a sample costs one clock read plus a handful of relaxed
// atomic adds — cheap enough to leave on in production builds. The whole
// layer compiles out with -DLIBERATION_OBS_DISABLED (cmake option
// LIBERATION_OBS=OFF): the API stays, record() and now_ns() become
// no-ops, and exporters render empty families.
//
// Export is Prometheus-style text exposition (registry::metrics_text):
// counters and gauges as single samples, histograms as summary families
// with p50/p95/p99 quantile labels plus _sum/_count and a _max gauge.
// Quantiles are bucket upper bounds (values bucketed by floor(log2(ns))),
// so a reported p99 of 16384 means "99% of samples completed in under
// 16.4 us" — coarse, but stable, allocation-free, and mergeable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace liberation::obs {

#ifdef LIBERATION_OBS_DISABLED
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

/// Monotonic counter. add()/inc() from any thread; mirror() overwrites
/// with a snapshot of an *external* monotonic source (the collector
/// pattern: array_stats counters are the source of truth, the registry
/// copy exists so one exposition shows everything).
class counter {
public:
    void inc(std::uint64_t n = 1) noexcept {
        if constexpr (kEnabled) v_.fetch_add(n, std::memory_order_relaxed);
    }
    void mirror(std::uint64_t v) noexcept {
        if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time gauge (signed: deltas may go negative).
class gauge {
public:
    void set(std::int64_t v) noexcept {
        if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
    }
    void add(std::int64_t n) noexcept {
        if constexpr (kEnabled) v_.fetch_add(n, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket latency histogram: bucket i counts samples v (nanoseconds)
/// with floor(log2(v)) == i, i.e. v in [2^i, 2^(i+1)); samples of 0 land
/// in bucket 0. 64 buckets cover every uint64 value, so record() never
/// clips. All updates are relaxed atomics — recording is wait-free and
/// safe from any thread; snapshots are racy-but-coherent-enough in the
/// same sense as array_stats (each bucket individually exact, the set
/// possibly mid-update).
class latency_histogram {
public:
    static constexpr std::size_t kBuckets = 64;

    void record(std::uint64_t value_ns) noexcept {
        if constexpr (!kEnabled) {
            (void)value_ns;
            return;
        }
        buckets_[bucket_of(value_ns)].fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(value_ns, std::memory_order_relaxed);
        std::uint64_t prev = max_.load(std::memory_order_relaxed);
        while (value_ns > prev &&
               !max_.compare_exchange_weak(prev, value_ns,
                                           std::memory_order_relaxed)) {
        }
    }

    /// floor(log2(v)) clamped to [0, kBuckets); 0 maps to bucket 0.
    [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
        if (v <= 1) return 0;
        std::size_t b = 0;
        while (v >>= 1) ++b;
        return b < kBuckets ? b : kBuckets - 1;
    }

    /// Upper bound (exclusive) of bucket i in nanoseconds — the value
    /// quantiles report.
    [[nodiscard]] static std::uint64_t bucket_upper(std::size_t i) noexcept {
        return i + 1 >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << (i + 1));
    }

    struct snapshot_t {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t max = 0;
        std::uint64_t p50 = 0;
        std::uint64_t p95 = 0;
        std::uint64_t p99 = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        /// Smallest bucket upper bound covering at least q of the samples.
        [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
            if (count == 0) return 0;
            const auto want = static_cast<std::uint64_t>(
                q * static_cast<double>(count) + 0.5);
            std::uint64_t cum = 0;
            for (std::size_t i = 0; i < kBuckets; ++i) {
                cum += buckets[i];
                if (cum >= want && cum != 0) return bucket_upper(i);
            }
            return bucket_upper(kBuckets - 1);
        }
    };

    /// Best-effort exemplar: remember the trace id of the largest sample
    /// seen, so a histogram's tail quantile links to the causal tree that
    /// produced it. Value and id are separate relaxed atomics — racing
    /// writers may briefly pair one's value with the other's id, which is
    /// acceptable for a debugging pointer (both belong to *some* slow op).
    void note_exemplar(std::uint64_t value_ns,
                       std::uint64_t trace_id) noexcept {
        if constexpr (!kEnabled) {
            (void)value_ns;
            (void)trace_id;
            return;
        }
        if (trace_id != 0 &&
            value_ns >= ex_value_.load(std::memory_order_relaxed)) {
            ex_value_.store(value_ns, std::memory_order_relaxed);
            ex_trace_.store(trace_id, std::memory_order_relaxed);
        }
    }
    [[nodiscard]] std::uint64_t exemplar_value() const noexcept {
        return ex_value_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t exemplar_trace() const noexcept {
        return ex_trace_.load(std::memory_order_relaxed);
    }

    /// Zero every bucket, the sum, and the max. NOT a consistent cut:
    /// samples recorded concurrently may survive or be lost per-field.
    /// Meant for "this slot holds new hardware" resets (the latency
    /// monitor), where the old distribution is meaningless anyway —
    /// never for registry-exported histograms, whose counters must stay
    /// monotonic for scrapers.
    void clear() noexcept {
        if constexpr (!kEnabled) return;
        for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
        ex_value_.store(0, std::memory_order_relaxed);
        ex_trace_.store(0, std::memory_order_relaxed);
    }

    [[nodiscard]] snapshot_t snapshot() const noexcept {
        snapshot_t s;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
            s.count += s.buckets[i];
        }
        s.sum = sum_.load(std::memory_order_relaxed);
        s.max = max_.load(std::memory_order_relaxed);
        s.p50 = s.quantile(0.50);
        s.p95 = s.quantile(0.95);
        s.p99 = s.quantile(0.99);
        return s;
    }

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
    std::atomic<std::uint64_t> ex_value_{0};
    std::atomic<std::uint64_t> ex_trace_{0};
};

/// Named metric store. get_*() registers on first use and returns a
/// reference that stays valid for the registry's lifetime (metrics are
/// heap nodes; the map only holds pointers), so hot paths resolve names
/// once and never touch the mutex again. Calling get_* with a name that
/// exists as a different metric kind throws std::logic_error.
class registry {
public:
    counter& get_counter(const std::string& name, std::string help = "");
    gauge& get_gauge(const std::string& name, std::string help = "");
    latency_histogram& get_histogram(const std::string& name,
                                     std::string help = "");

    /// Labeled series: one sample line `family{labels} value` in the
    /// exposition, with the `# HELP`/`# TYPE` header emitted once per
    /// family. `labels` is the literal Prometheus label body, e.g.
    /// `disk="3"` — the caller formats it (and owns its validity).
    /// Series of one family are registered independently and rendered
    /// contiguously (map order); help is taken from the first series.
    counter& get_labeled_counter(const std::string& family,
                                 const std::string& labels,
                                 std::string help = "");
    gauge& get_labeled_gauge(const std::string& family,
                             const std::string& labels,
                             std::string help = "");

    /// Prometheus-style text exposition of every registered metric, each
    /// family prefixed with `prefix` (default "liberation_"). Safe to call
    /// concurrently with metric updates (relaxed snapshot semantics).
    [[nodiscard]] std::string metrics_text(
        const std::string& prefix = "liberation_") const;

    /// Name → snapshot of every registered histogram, in name order.
    [[nodiscard]] std::vector<
        std::pair<std::string, latency_histogram::snapshot_t>>
    histogram_snapshots() const;

private:
    enum class kind { counter_k, gauge_k, histogram_k };
    struct entry {
        kind k;
        std::string help;
        /// Labeled series only: the family name and the label body. The
        /// map key is family + "{" + labels + "}", which keeps every
        /// series of a family contiguous in map order ('{' sorts after
        /// every identifier character).
        std::string family;
        std::string labels;
        std::unique_ptr<counter> c;
        std::unique_ptr<gauge> g;
        std::unique_ptr<latency_histogram> h;
    };

    entry& get_entry(const std::string& name, kind k, std::string help);
    entry& get_entry_impl(const std::string& name, const std::string& family,
                          const std::string& labels, kind k,
                          std::string help);
    entry& get_labeled_entry(const std::string& family,
                             const std::string& labels, kind k,
                             std::string help);

    mutable std::mutex mutex_;
    std::map<std::string, entry> metrics_;
};

}  // namespace liberation::obs
