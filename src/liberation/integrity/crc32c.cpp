#include "liberation/integrity/crc32c.hpp"

#include <atomic>
#include <cstring>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_CRC32
#define HWCAP_CRC32 (1u << 7)
#endif
#endif

namespace liberation::integrity {

namespace {

// ---------------------------------------------------------------------------
// Software path: slice-by-8.
//
// t[0] is the classic reflected-polynomial byte table; t[s] extends it so
// that eight input bytes fold into the CRC with eight independent table
// lookups per iteration instead of eight dependent ones. The recurrence
// t[s][i] = (t[s-1][i] >> 8) ^ t[0][t[s-1][i] & 0xff] expresses "advance
// the partial remainder by one more zero byte".

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

struct crc_tables {
    std::uint32_t t[8][256];

    crc_tables() noexcept {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int bit = 0; bit < 8; ++bit)
                c = (c & 1u) ? (c >> 1) ^ kPolyReflected : c >> 1;
            t[0][i] = c;
        }
        for (std::uint32_t s = 1; s < 8; ++s)
            for (std::uint32_t i = 0; i < 256; ++i)
                t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xffu];
    }
};

const crc_tables tables;

// Raw kernels work on the *inverted* running CRC (callers handle the
// standard ~seed / ~result bracketing), so chaining composes exactly.
std::uint32_t software_raw(std::uint32_t crc, const std::byte* p,
                           std::size_t n) noexcept {
    const auto& t = tables.t;
    // Slice-by-8 loads two 32-bit words per iteration; the little-endian
    // byte order of the loads matches the reflected polynomial. (All
    // supported targets are little-endian; the byte-at-a-time tail below
    // is the portable fallback and handles any residue.)
    while (n >= 8) {
        std::uint32_t lo, hi;
        std::memcpy(&lo, p, 4);
        std::memcpy(&hi, p + 4, 4);
        lo ^= crc;
        crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^
              t[5][(lo >> 16) & 0xffu] ^ t[4][lo >> 24] ^ t[3][hi & 0xffu] ^
              t[2][(hi >> 8) & 0xffu] ^ t[1][(hi >> 16) & 0xffu] ^
              t[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    while (n-- > 0) {
        crc = (crc >> 8) ^
              t[0][(crc ^ std::to_integer<std::uint32_t>(*p++)) & 0xffu];
    }
    return crc;
}

// ---------------------------------------------------------------------------
// Hardware path.

#if defined(__x86_64__) || defined(__i386__)

__attribute__((target("sse4.2"))) std::uint32_t hardware_raw(
    std::uint32_t crc, const std::byte* p, std::size_t n) noexcept {
#if defined(__x86_64__)
    std::uint64_t c = crc;
    while (n >= 8) {
        std::uint64_t w;
        std::memcpy(&w, p, 8);
        c = __builtin_ia32_crc32di(c, w);
        p += 8;
        n -= 8;
    }
    crc = static_cast<std::uint32_t>(c);
#endif
    while (n-- > 0) {
        crc = __builtin_ia32_crc32qi(crc,
                                     std::to_integer<unsigned char>(*p++));
    }
    return crc;
}

bool detect_hardware() noexcept { return __builtin_cpu_supports("sse4.2"); }

#elif defined(__aarch64__)

__attribute__((target("+crc"))) std::uint32_t hardware_raw(
    std::uint32_t crc, const std::byte* p, std::size_t n) noexcept {
    while (n >= 8) {
        std::uint64_t w;
        std::memcpy(&w, p, 8);
        crc = __builtin_aarch64_crc32cx(crc, w);
        p += 8;
        n -= 8;
    }
    while (n-- > 0) {
        crc = __builtin_aarch64_crc32cb(crc,
                                        std::to_integer<unsigned char>(*p++));
    }
    return crc;
}

bool detect_hardware() noexcept {
#if defined(__linux__)
    return (getauxval(AT_HWCAP) & HWCAP_CRC32) != 0;
#else
    return false;
#endif
}

#else

std::uint32_t hardware_raw(std::uint32_t crc, const std::byte* p,
                           std::size_t n) noexcept {
    return software_raw(crc, p, n);
}

bool detect_hardware() noexcept { return false; }

#endif

// Dispatch state. CPU detection must not run during static initialization
// (other translation units' constructors may checksum), so the atomic is a
// lazy magic static.
std::atomic<crc32c_impl>& impl_slot() noexcept {
    static std::atomic<crc32c_impl> slot{
        detect_hardware() ? crc32c_impl::hardware : crc32c_impl::software};
    return slot;
}

}  // namespace

crc32c_impl active_impl() noexcept {
    return impl_slot().load(std::memory_order_relaxed);
}

bool hardware_available() noexcept {
    static const bool available = detect_hardware();
    return available;
}

void force_impl(crc32c_impl impl) noexcept {
    if (impl == crc32c_impl::hardware && !hardware_available())
        impl = crc32c_impl::software;
    impl_slot().store(impl, std::memory_order_relaxed);
}

std::uint32_t crc32c_software(const std::byte* data, std::size_t n,
                              std::uint32_t seed) noexcept {
    return ~software_raw(~seed, data, n);
}

std::uint32_t crc32c_hardware(const std::byte* data, std::size_t n,
                              std::uint32_t seed) noexcept {
    return ~hardware_raw(~seed, data, n);
}

std::uint32_t crc32c(const std::byte* data, std::size_t n,
                     std::uint32_t seed) noexcept {
    return active_impl() == crc32c_impl::hardware
               ? crc32c_hardware(data, n, seed)
               : crc32c_software(data, n, seed);
}

std::uint32_t crc32c_raw_software(std::uint32_t raw, const std::byte* p,
                                  std::size_t n) noexcept {
    return software_raw(raw, p, n);
}

// ---------------------------------------------------------------------------
// Lane combiner: GF(2) matrix algebra over the 32-bit raw CRC state.
//
// Advancing a raw state by one zero byte is a linear map; its matrix powers
// give "advance by len zero bytes" for any len (zlib's crc32_combine).
// Matrices are represented column-wise: m[i] is the image of basis bit i.

namespace {

struct gf2_matrix {
    std::uint32_t m[32];
};

std::uint32_t gf2_times(const gf2_matrix& a, std::uint32_t x) noexcept {
    std::uint32_t r = 0;
    for (int i = 0; x != 0; ++i, x >>= 1)
        if (x & 1u) r ^= a.m[i];
    return r;
}

/// a ∘ b: apply b, then a.
gf2_matrix gf2_compose(const gf2_matrix& a, const gf2_matrix& b) noexcept {
    gf2_matrix r;
    for (int i = 0; i < 32; ++i) r.m[i] = gf2_times(a, b.m[i]);
    return r;
}

/// Advance-by-`len`-zero-bytes as a matrix power of the one-byte step.
gf2_matrix gf2_shift_bytes(std::size_t len) noexcept {
    gf2_matrix one;  // advance raw state by a single zero byte
    for (int i = 0; i < 32; ++i) {
        const std::uint32_t s = 1u << i;
        one.m[i] = (s >> 8) ^ tables.t[0][s & 0xffu];
    }
    gf2_matrix acc;  // identity
    for (int i = 0; i < 32; ++i) acc.m[i] = 1u << i;
    while (len != 0) {
        if (len & 1u) acc = gf2_compose(one, acc);
        one = gf2_compose(one, one);
        len >>= 1;
    }
    return acc;
}

}  // namespace

crc32c_lane_combiner::crc32c_lane_combiner(std::size_t block_bytes) noexcept
    : n_(block_bytes) {
    const std::size_t lane = crc32c_lane_bytes(n_);
    const gf2_matrix hi = gf2_shift_bytes(n_ - lane);
    const gf2_matrix lo = gf2_shift_bytes(n_ - 2 * lane);
    const gf2_matrix full = gf2_compose(gf2_shift_bytes(lane), hi);
    for (int k = 0; k < 8; ++k)
        for (std::uint32_t d = 0; d < 16; ++d) {
            shift_hi_.tab[k][d] = gf2_times(hi, d << (4 * k));
            shift_lo_.tab[k][d] = gf2_times(lo, d << (4 * k));
        }
    seed_term_ = gf2_times(full, ~0u);
}

}  // namespace liberation::integrity
