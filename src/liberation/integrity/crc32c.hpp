// CRC32C (Castagnoli) kernel: the checksum currency of the integrity
// layer, mirroring the xorops kernel conventions (plain-pointer kernels,
// span-flavoured overloads, runtime-dispatched implementations).
//
// Two implementations sit behind one entry point:
//   * software — slice-by-8 table lookup, portable, ~1-2 GiB/s;
//   * hardware — the SSE4.2 `crc32` instruction (x86) or the ARMv8 CRC
//     extension, selected at runtime when the CPU reports support.
//
// The polynomial is the Castagnoli one (0x1EDC6F41, reflected 0x82F63B78),
// i.e. the CRC used by iSCSI, ext4 metadata and btrfs — chosen over
// CRC32/ISO for its better Hamming distance at 4 KiB block sizes, which is
// exactly the granularity the integrity regions checksum at.
//
// Convention: crc32c(data, n) starts from seed 0 and includes the standard
// pre/post inversion, so crc32c("123456789") == 0xE3069283 (the check
// value every CRC32C implementation must reproduce). Passing a previous
// result as `seed` continues the stream:
//   crc32c(a ++ b) == crc32c(b, crc32c(a)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace liberation::integrity {

enum class crc32c_impl : std::uint8_t { software, hardware };

/// The implementation crc32c() currently dispatches to. Hardware is picked
/// automatically when the CPU supports it.
[[nodiscard]] crc32c_impl active_impl() noexcept;

/// True when this CPU can run the hardware path.
[[nodiscard]] bool hardware_available() noexcept;

/// Pin the dispatched implementation (tests and the crc32c bench compare
/// the two paths). Forcing hardware requires hardware_available().
void force_impl(crc32c_impl impl) noexcept;

/// CRC32C of [data, data+n), continuing from `seed` (0 = fresh stream).
[[nodiscard]] std::uint32_t crc32c(const std::byte* data, std::size_t n,
                                   std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32c(std::span<const std::byte> data,
                                          std::uint32_t seed = 0) noexcept {
    return crc32c(data.data(), data.size(), seed);
}

/// The individual kernels, exposed for cross-validation and benchmarking.
/// crc32c_hardware() must only be called when hardware_available().
[[nodiscard]] std::uint32_t crc32c_software(const std::byte* data,
                                            std::size_t n,
                                            std::uint32_t seed = 0) noexcept;
[[nodiscard]] std::uint32_t crc32c_hardware(const std::byte* data,
                                            std::size_t n,
                                            std::uint32_t seed = 0) noexcept;

}  // namespace liberation::integrity
