// CRC32C (Castagnoli) kernel: the checksum currency of the integrity
// layer, mirroring the xorops kernel conventions (plain-pointer kernels,
// span-flavoured overloads, runtime-dispatched implementations).
//
// Two implementations sit behind one entry point:
//   * software — slice-by-8 table lookup, portable, ~1-2 GiB/s;
//   * hardware — the SSE4.2 `crc32` instruction (x86) or the ARMv8 CRC
//     extension, selected at runtime when the CPU reports support.
//
// The polynomial is the Castagnoli one (0x1EDC6F41, reflected 0x82F63B78),
// i.e. the CRC used by iSCSI, ext4 metadata and btrfs — chosen over
// CRC32/ISO for its better Hamming distance at 4 KiB block sizes, which is
// exactly the granularity the integrity regions checksum at.
//
// Convention: crc32c(data, n) starts from seed 0 and includes the standard
// pre/post inversion, so crc32c("123456789") == 0xE3069283 (the check
// value every CRC32C implementation must reproduce). Passing a previous
// result as `seed` continues the stream:
//   crc32c(a ++ b) == crc32c(b, crc32c(a)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace liberation::integrity {

enum class crc32c_impl : std::uint8_t { software, hardware };

/// The implementation crc32c() currently dispatches to. Hardware is picked
/// automatically when the CPU supports it.
[[nodiscard]] crc32c_impl active_impl() noexcept;

/// True when this CPU can run the hardware path.
[[nodiscard]] bool hardware_available() noexcept;

/// Pin the dispatched implementation (tests and the crc32c bench compare
/// the two paths). Forcing hardware requires hardware_available().
void force_impl(crc32c_impl impl) noexcept;

/// CRC32C of [data, data+n), continuing from `seed` (0 = fresh stream).
[[nodiscard]] std::uint32_t crc32c(const std::byte* data, std::size_t n,
                                   std::uint32_t seed = 0) noexcept;

[[nodiscard]] inline std::uint32_t crc32c(std::span<const std::byte> data,
                                          std::uint32_t seed = 0) noexcept {
    return crc32c(data.data(), data.size(), seed);
}

/// The individual kernels, exposed for cross-validation and benchmarking.
/// crc32c_hardware() must only be called when hardware_available().
[[nodiscard]] std::uint32_t crc32c_software(const std::byte* data,
                                            std::size_t n,
                                            std::uint32_t seed = 0) noexcept;
[[nodiscard]] std::uint32_t crc32c_hardware(const std::byte* data,
                                            std::size_t n,
                                            std::uint32_t seed = 0) noexcept;

// ---------------------------------------------------------------------------
// Raw-state kernels and lane algebra for the fused XOR+CRC traversals
// (xorops). The raw kernels advance the *inverted* running CRC with no
// ~seed/~result bracketing — the state domain in which CRC updates are
// linear over GF(2), so independently computed chains can be stitched
// together after the fact.

/// Advance a raw (inverted) CRC state over [p, p+n) with the portable
/// slice-by-8 kernel. crc32c(data) == ~crc32c_raw_software(~0u, data, n).
[[nodiscard]] std::uint32_t crc32c_raw_software(std::uint32_t raw,
                                                const std::byte* p,
                                                std::size_t n) noexcept;

/// Lane split rule shared by every fused kernel tier: a block of n bytes
/// is checksummed as three independent chains over [0, L), [L, 2L) and
/// [2L, n) with L = crc32c_lane_bytes(n) — three chains hide the 3-cycle
/// latency of the hardware crc32 instruction, tripling sweep throughput.
/// L is 8-byte aligned so the chains advance in whole-word steps; blocks
/// under 24 bytes degenerate to a single chain in lane 2.
[[nodiscard]] constexpr std::size_t crc32c_lane_bytes(std::size_t n) noexcept {
    return (n / 3) & ~static_cast<std::size_t>(7);
}

/// Stitches the three raw lane chains of one fixed-size block back into
/// the block's standard CRC32C. The stitch multiplies each lane CRC by
/// x^(8*shift) mod P — a linear map precomputed into nibble lookup tables
/// at construction (zlib's crc32_combine operator, cached for the block
/// size instead of rebuilt per call), so combining costs ~20 table
/// lookups per block regardless of block size.
class crc32c_lane_combiner {
public:
    explicit crc32c_lane_combiner(std::size_t block_bytes) noexcept;

    [[nodiscard]] std::size_t block() const noexcept { return n_; }

    /// `lanes` holds the raw lane chains (each seeded 0) produced by a
    /// fused kernel over one block() -byte region. Returns the standard
    /// (seed 0, bracketed) CRC32C of the whole block.
    [[nodiscard]] std::uint32_t combine(
        const std::uint32_t lanes[3]) const noexcept {
        return ~(apply(shift_hi_, lanes[0]) ^ apply(shift_lo_, lanes[1]) ^
                 lanes[2] ^ seed_term_);
    }

private:
    /// x^(8*len) mod P as 8 nibble tables: apply() advances a raw state
    /// by `len` zero bytes in 8 lookups.
    struct shift_op {
        std::uint32_t tab[8][16];
    };

    [[nodiscard]] static std::uint32_t apply(const shift_op& op,
                                             std::uint32_t x) noexcept {
        std::uint32_t r = 0;
        for (int k = 0; k < 8; ++k) r ^= op.tab[k][(x >> (4 * k)) & 0xfu];
        return r;
    }

    std::size_t n_;
    shift_op shift_hi_;        ///< advance by n - L bytes (lane 0)
    shift_op shift_lo_;        ///< advance by n - 2L bytes (lane 1)
    std::uint32_t seed_term_;  ///< the ~0 seed advanced through all n bytes
};

}  // namespace liberation::integrity
