// Per-vdisk integrity region: one CRC32C per fixed-size block of the disk.
//
// Modeled as battery-backed metadata the same way `intent_log` is: a real
// array would keep these checksums in NVRAM or an interleaved on-disk
// format with its own redundancy; the simulator keeps them in a plain
// vector that survives power loss (dropped writes still *record* their
// checksum — the intent reached the metadata domain even though the bits
// never reached the medium, which is exactly what makes a torn write
// deterministically detectable on replay).
//
// The block size is the checksum granularity: the array uses
// gcd(sector_size, element_size), so every element-aligned disk I/O is
// also block-aligned and record()/verify() never straddle a partial block.
//
// Checksums are *not* updated by reads — verify() is const — and the
// region is preserved when a disk fail-stops or is replaced: the metadata
// describes the dead disk's last-known contents, which is what rebuild
// verification and replaced-disk reads need to check reconstructions
// against.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "liberation/integrity/crc32c.hpp"
#include "liberation/util/assert.hpp"

namespace liberation::integrity {

class integrity_region {
public:
    integrity_region(std::size_t capacity_bytes, std::size_t block_size)
        : block_(block_size) {
        LIBERATION_EXPECTS(block_size > 0);
        LIBERATION_EXPECTS(capacity_bytes % block_size == 0);
        // A fresh disk reads back as zeros, so seed every slot with the
        // checksum of a zero block: reads of never-written extents verify.
        const std::vector<std::byte> zero(block_size, std::byte{0});
        crcs_.assign(capacity_bytes / block_size,
                     crc32c(zero.data(), zero.size()));
    }

    [[nodiscard]] std::size_t block_size() const noexcept { return block_; }
    [[nodiscard]] std::size_t blocks() const noexcept { return crcs_.size(); }

    /// Record the checksums of the blocks covered by a write of `data` at
    /// byte `offset`. Offset and size must be block-aligned — the array
    /// guarantees this because all its disk I/O is element-aligned.
    void record(std::size_t offset, std::span<const std::byte> data) {
        LIBERATION_EXPECTS(offset % block_ == 0);
        LIBERATION_EXPECTS(data.size() % block_ == 0);
        LIBERATION_EXPECTS(offset / block_ + data.size() / block_ <=
                           crcs_.size());
        std::size_t b = offset / block_;
        for (std::size_t i = 0; i < data.size(); i += block_)
            crcs_[b++] = crc32c(data.subspan(i, block_));
    }

    /// True iff every covered block of `data` matches its stored checksum.
    [[nodiscard]] bool verify(std::size_t offset,
                              std::span<const std::byte> data) const {
        LIBERATION_EXPECTS(offset % block_ == 0);
        LIBERATION_EXPECTS(data.size() % block_ == 0);
        LIBERATION_EXPECTS(offset / block_ + data.size() / block_ <=
                           crcs_.size());
        std::size_t b = offset / block_;
        for (std::size_t i = 0; i < data.size(); i += block_)
            if (crc32c(data.subspan(i, block_)) != crcs_[b++]) return false;
        return true;
    }

    [[nodiscard]] std::uint32_t stored(std::size_t block) const {
        LIBERATION_EXPECTS(block < crcs_.size());
        return crcs_[block];
    }

    /// The whole checksum table, for serialization into the persistence
    /// layer's superblocks (raid/persist/).
    [[nodiscard]] std::span<const std::uint32_t> checksums() const noexcept {
        return crcs_;
    }

    /// Reinstall a persisted checksum table at mount. The count must match
    /// the region's geometry — a mismatch means the superblock belongs to
    /// a different disk size and the caller should have rejected it.
    void restore_checksums(std::span<const std::uint32_t> crcs) {
        LIBERATION_EXPECTS(crcs.size() == crcs_.size());
        crcs_.assign(crcs.begin(), crcs.end());
    }

    /// Fault injection: flip bits of a stored checksum (the metadata
    /// itself is damaged, not the data it describes). `mask` must be
    /// non-zero so the corruption is real.
    void corrupt_block(std::size_t block, std::uint32_t mask) {
        LIBERATION_EXPECTS(block < crcs_.size());
        LIBERATION_EXPECTS(mask != 0);
        crcs_[block] ^= mask;
    }

private:
    std::size_t block_;
    std::vector<std::uint32_t> crcs_;
};

}  // namespace liberation::integrity
