// Per-vdisk integrity region: one CRC32C per fixed-size block of the disk.
//
// Modeled as battery-backed metadata the same way `intent_log` is: a real
// array would keep these checksums in NVRAM or an interleaved on-disk
// format with its own redundancy; the simulator keeps them in a plain
// vector that survives power loss (dropped writes still *record* their
// checksum — the intent reached the metadata domain even though the bits
// never reached the medium, which is exactly what makes a torn write
// deterministically detectable on replay).
//
// The block size is the checksum granularity: the array uses
// gcd(sector_size, element_size), so every element-aligned disk I/O is
// also block-aligned and record()/verify() never straddle a partial block.
//
// Checksums are *not* updated by reads — verify() is const — and the
// region is preserved when a disk fail-stops or is replaced: the metadata
// describes the dead disk's last-known contents, which is what rebuild
// verification and replaced-disk reads need to check reconstructions
// against.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "liberation/integrity/crc32c.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::integrity {

class integrity_region {
public:
    integrity_region(std::size_t capacity_bytes, std::size_t block_size)
        : block_(block_size) {
        LIBERATION_EXPECTS(block_size > 0);
        LIBERATION_EXPECTS(capacity_bytes % block_size == 0);
        // A fresh disk reads back as zeros, so seed every slot with the
        // checksum of a zero block: reads of never-written extents verify.
        const std::vector<std::byte> zero(block_size, std::byte{0});
        crcs_.assign(capacity_bytes / block_size,
                     crc32c(zero.data(), zero.size()));
    }

    [[nodiscard]] std::size_t block_size() const noexcept { return block_; }
    [[nodiscard]] std::size_t blocks() const noexcept { return crcs_.size(); }

    /// Record the checksums of the blocks covered by a write of `data` at
    /// byte `offset`. Offset and size must be block-aligned — the array
    /// guarantees this because all its disk I/O is element-aligned.
    void record(std::size_t offset, std::span<const std::byte> data) {
        check_range(offset, data.size());
        xorops::crc32c_blocks(data.data(), data.size(), block_,
                              crcs_.data() + offset / block_);
    }

    /// True iff every covered block of `data` matches its stored checksum.
    [[nodiscard]] bool verify(std::size_t offset,
                              std::span<const std::byte> data) const {
        check_range(offset, data.size());
        std::size_t b = offset / block_;
        std::uint32_t got[verify_chunk];
        for (std::size_t i = 0; i < data.size();) {
            const std::size_t run =
                std::min(data.size() - i, verify_chunk * block_);
            xorops::crc32c_blocks(data.data() + i, run, block_, got);
            for (std::size_t j = 0; j < run / block_; ++j)
                if (got[j] != crcs_[b + j]) return false;
            b += run / block_;
            i += run;
        }
        return true;
    }

    /// verify() that keeps the computed words: `out` receives one CRC32C
    /// per covered block (the fused sweep computes them for the verdict
    /// anyway) regardless of the outcome, so a caller about to write
    /// `data` back — rebuild commits, read-repair — can install() them
    /// instead of paying another traversal.
    [[nodiscard]] bool verify_capture(std::size_t offset,
                                      std::span<const std::byte> data,
                                      std::uint32_t* out) const {
        check_range(offset, data.size());
        xorops::crc32c_blocks(data.data(), data.size(), block_, out);
        return std::equal(out, out + data.size() / block_,
                          crcs_.data() + offset / block_);
    }

    /// Install checksums precomputed by a fused write traversal (one per
    /// covered block) without re-reading the data: the write path computes
    /// them inside the same pass that produces the bytes.
    void install(std::size_t offset, std::span<const std::uint32_t> crcs) {
        LIBERATION_EXPECTS(offset % block_ == 0);
        LIBERATION_EXPECTS(offset / block_ + crcs.size() <= crcs_.size());
        std::copy(crcs.begin(), crcs.end(), crcs_.data() + offset / block_);
    }

    /// True iff precomputed per-block checksums (from a fused read
    /// traversal) all match the stored values for the covered range.
    [[nodiscard]] bool matches(std::size_t offset,
                               std::span<const std::uint32_t> crcs) const {
        LIBERATION_EXPECTS(offset % block_ == 0);
        LIBERATION_EXPECTS(offset / block_ + crcs.size() <= crcs_.size());
        return std::equal(crcs.begin(), crcs.end(),
                          crcs_.data() + offset / block_);
    }

    [[nodiscard]] std::uint32_t stored(std::size_t block) const {
        LIBERATION_EXPECTS(block < crcs_.size());
        return crcs_[block];
    }

    /// The whole checksum table, for serialization into the persistence
    /// layer's superblocks (raid/persist/).
    [[nodiscard]] std::span<const std::uint32_t> checksums() const noexcept {
        return crcs_;
    }

    /// Reinstall a persisted checksum table at mount. The count must match
    /// the region's geometry — a mismatch means the superblock belongs to
    /// a different disk size and the caller should have rejected it.
    void restore_checksums(std::span<const std::uint32_t> crcs) {
        LIBERATION_EXPECTS(crcs.size() == crcs_.size());
        crcs_.assign(crcs.begin(), crcs.end());
    }

    /// Fault injection: flip bits of a stored checksum (the metadata
    /// itself is damaged, not the data it describes). `mask` must be
    /// non-zero so the corruption is real.
    void corrupt_block(std::size_t block, std::uint32_t mask) {
        LIBERATION_EXPECTS(block < crcs_.size());
        LIBERATION_EXPECTS(mask != 0);
        crcs_[block] ^= mask;
    }

private:
    /// Blocks checksummed per verify() batch: bounds the stack buffer
    /// while amortizing the per-call dispatch over a cache-friendly run.
    static constexpr std::size_t verify_chunk = 64;

    void check_range(std::size_t offset, std::size_t size) const {
        LIBERATION_EXPECTS(offset % block_ == 0);
        LIBERATION_EXPECTS(size % block_ == 0);
        LIBERATION_EXPECTS(offset / block_ + size / block_ <= crcs_.size());
    }

    std::size_t block_;
    std::vector<std::uint32_t> crcs_;
};

}  // namespace liberation::integrity
