// Common interface for RAID-6 (P+Q) erasure codes.
//
// A code instance is bound to (k, w): k data columns and w elements per
// strip. Stripes passed in must have rows() == w and cols() == k+2, with
// column k holding P and column k+1 holding Q. Element size is a property
// of the stripe, not the code — the same instance serves 8-byte complexity
// probes and 8-KiB throughput runs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "liberation/codes/stripe.hpp"

namespace liberation::codes {

class raid6_code {
public:
    virtual ~raid6_code() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Number of data columns.
    [[nodiscard]] virtual std::uint32_t k() const noexcept = 0;

    /// Elements per strip (the array-code "w").
    [[nodiscard]] virtual std::uint32_t rows() const noexcept = 0;

    /// Total columns (k data + P + Q).
    [[nodiscard]] std::uint32_t n() const noexcept { return k() + 2; }

    [[nodiscard]] std::uint32_t p_column() const noexcept { return k(); }
    [[nodiscard]] std::uint32_t q_column() const noexcept { return k() + 1; }

    /// Compute both parity columns from the data columns.
    virtual void encode(const stripe_view& stripe) const = 0;

    /// encode() plus the per-block CRC32C of each parity strip, computed
    /// while the parity bytes are still cache-hot instead of by a separate
    /// sweep after the fact. p_crcs/q_crcs receive strip_size()/crc_block
    /// checksums each (strip_size() must divide evenly; the stripe must be
    /// a non-packet view). The base implementation is the two-pass
    /// equivalent — encode, then checksum — and fused overrides must
    /// produce identical bytes, identical checksums, and identical xorops
    /// counter deltas.
    virtual void encode_crc(const stripe_view& stripe, std::size_t crc_block,
                            std::uint32_t* p_crcs,
                            std::uint32_t* q_crcs) const;

    /// Rebuild the erased columns in place. `erased` holds 1 or 2 distinct
    /// column indices in [0, n()); their current contents are ignored.
    /// Every pattern of <= 2 erasures is recoverable (MDS).
    virtual void decode(const stripe_view& stripe,
                        std::span<const std::uint32_t> erased) const = 0;

    /// Apply a single data-element update: `delta` = old ^ new content of
    /// element (row, col). The data element itself is NOT touched; only the
    /// parity columns are patched. Returns the number of parity elements
    /// modified (the code's update cost for this position).
    virtual std::uint32_t apply_update(const stripe_view& stripe,
                                       std::uint32_t row, std::uint32_t col,
                                       std::span<const std::byte> delta) const = 0;

    /// True iff both parity columns are consistent with the data.
    /// Default implementation re-encodes into scratch and compares.
    [[nodiscard]] virtual bool verify(const stripe_view& stripe) const;

protected:
    void check_stripe(const stripe_view& stripe) const;
};

/// Erasure-pattern helpers shared by benches and tests.

/// All C(n,2) two-column erasure patterns for an n-column code.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> all_two_erasures(
    std::uint32_t n);

/// All C(k,2) two-*data*-column erasure patterns.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> all_two_data_erasures(
    std::uint32_t k);

}  // namespace liberation::codes
