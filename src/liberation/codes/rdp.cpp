#include "liberation/codes/rdp.hpp"

#include <algorithm>

#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::codes {

namespace {

class accumulator {
public:
    accumulator(std::byte* dst, std::size_t n) noexcept : dst_(dst), n_(n) {}

    void add(const std::byte* src) noexcept {
        if (fresh_) {
            xorops::copy(dst_, src, n_);
            fresh_ = false;
        } else {
            xorops::xor_into(dst_, src, n_);
        }
    }

    void finish() noexcept {
        if (fresh_) xorops::zero(dst_, n_);
    }

private:
    std::byte* dst_;
    std::size_t n_;
    bool fresh_ = true;
};

}  // namespace

rdp_code::rdp_code(std::uint32_t k, std::uint32_t p) : k_(k), p_(p) {
    LIBERATION_EXPECTS(k >= 1);
    LIBERATION_EXPECTS(p >= 3 && p % 2 == 1 && util::is_prime(p));
    LIBERATION_EXPECTS(k <= p - 1);
}

rdp_code::rdp_code(std::uint32_t k)
    : rdp_code(k, util::next_odd_prime(k + 1)) {}

std::string rdp_code::name() const {
    return "rdp(k=" + std::to_string(k_) + ",p=" + std::to_string(p_) + ")";
}

std::uint32_t rdp_code::stripe_col(std::uint32_t inner) const noexcept {
    LIBERATION_EXPECTS(inner < p_);
    if (inner < k_) return inner;
    if (inner == p_ - 1) return p_column();
    return n();  // phantom
}

void rdp_code::encode(const stripe_view& s) const {
    check_stripe(s);
    encode_p_only(s);
    encode_q_only(s);
}

void rdp_code::encode_p_only(const stripe_view& s) const {
    const std::size_t e = s.element_size();
    for (std::uint32_t i = 0; i < p_ - 1; ++i) {
        accumulator acc(s.element(i, p_column()), e);
        for (std::uint32_t j = 0; j < k_; ++j) acc.add(s.element(i, j));
        acc.finish();
    }
}

void rdp_code::encode_q_only(const stripe_view& s) const {
    const std::size_t e = s.element_size();
    // Q_d = XOR over inner columns c (data and P) of b[(d-c) mod p][c],
    // imaginary row p-1 and phantom columns contributing nothing.
    for (std::uint32_t d = 0; d < p_ - 1; ++d) {
        accumulator acc(s.element(d, q_column()), e);
        for (std::uint32_t c = 0; c < p_; ++c) {
            const std::uint32_t sc = stripe_col(c);
            if (sc == n()) continue;
            const std::uint32_t i = (d + p_ - c) % p_;
            if (i == p_ - 1) continue;
            acc.add(s.element(i, sc));
        }
        acc.finish();
    }
}

void rdp_code::decode(const stripe_view& s,
                      std::span<const std::uint32_t> erased) const {
    check_stripe(s);
    LIBERATION_EXPECTS(!erased.empty() && erased.size() <= 2);
    const std::uint32_t qc = q_column();

    std::uint32_t a = erased[0];
    std::uint32_t b = erased.size() == 2 ? erased[1] : a;
    if (a > b) std::swap(a, b);
    LIBERATION_EXPECTS(b < n());
    LIBERATION_EXPECTS(erased.size() == 1 || a != b);

    if (erased.size() == 1) {
        if (a == qc) {
            encode_q_only(s);
        } else {
            decode_single_via_rows(s, a == p_column() ? p_ - 1 : a);
        }
        return;
    }
    if (b == qc) {
        // The diagonal parity depends on everything else; rebuild the other
        // column by rows first, then re-encode Q.
        decode_single_via_rows(s, a == p_column() ? p_ - 1 : a);
        encode_q_only(s);
        return;
    }
    // Two inner columns (two data, or one data + row parity).
    const std::uint32_t li = a;  // a < b <= p_column() maps to inner order
    const std::uint32_t ri = (b == p_column()) ? p_ - 1 : b;
    decode_two_inner(s, li, ri);
}

void rdp_code::decode_single_via_rows(const stripe_view& s,
                                      std::uint32_t inner) const {
    // Inner rows XOR to zero (P is one of the inner columns), so any single
    // inner column is the XOR of the others.
    const std::size_t e = s.element_size();
    const std::uint32_t dst = stripe_col(inner);
    LIBERATION_EXPECTS(dst < n());
    for (std::uint32_t i = 0; i < p_ - 1; ++i) {
        accumulator acc(s.element(i, dst), e);
        for (std::uint32_t c = 0; c < p_; ++c) {
            const std::uint32_t sc = stripe_col(c);
            if (c == inner || sc == n()) continue;
            acc.add(s.element(i, sc));
        }
        acc.finish();
    }
}

void rdp_code::decode_two_inner(const stripe_view& s, std::uint32_t li,
                                std::uint32_t ri) const {
    LIBERATION_EXPECTS(li < ri && ri < p_);
    const std::size_t e = s.element_size();
    const std::uint32_t delta = ri - li;
    const std::uint32_t cl = stripe_col(li);
    const std::uint32_t cr = stripe_col(ri);
    LIBERATION_EXPECTS(cl < n() && cr < n());

    // Row syndromes into strip cl: R_i = XOR of surviving inner columns.
    for (std::uint32_t i = 0; i < p_ - 1; ++i) {
        accumulator acc(s.element(i, cl), e);
        for (std::uint32_t c = 0; c < p_; ++c) {
            const std::uint32_t sc = stripe_col(c);
            if (c == li || c == ri || sc == n()) continue;
            acc.add(s.element(i, sc));
        }
        acc.finish();
    }

    // Diagonal syndromes D_d, d = 0..p-2 (diagonal p-1 has no parity).
    util::aligned_buffer d_buf(static_cast<std::size_t>(p_ - 1) * e);
    const auto dsyn = [&](std::uint32_t d) noexcept {
        return d_buf.data() + static_cast<std::size_t>(d) * e;
    };
    for (std::uint32_t d = 0; d < p_ - 1; ++d) {
        accumulator acc(dsyn(d), e);
        acc.add(s.element(d, q_column()));
        for (std::uint32_t c = 0; c < p_; ++c) {
            const std::uint32_t sc = stripe_col(c);
            if (c == li || c == ri || sc == n()) continue;
            const std::uint32_t i = (d + p_ - c) % p_;
            if (i == p_ - 1) continue;
            acc.add(s.element(i, sc));
        }
        acc.finish();
    }

    // Forward chain: enters each row via the diagonal holding the column-li
    // unknown (the very first such diagonal has its column-ri member in the
    // imaginary row), then uses the row to get the column-ri bit. Stops at
    // the missing diagonal; the backward chain covers the rest.
    std::uint32_t x = (delta + p_ - 1) % p_;
    while (x != p_ - 1) {
        const std::uint32_t d = (x + li) % p_;
        if (d == p_ - 1) break;  // missing diagonal
        std::byte* bl = s.element(x, cl);  // currently holds R_x
        std::byte* br = s.element(x, cr);
        xorops::xor2(br, bl, dsyn(d), e);  // b[x][ri] = R_x ^ D_d
        xorops::copy(bl, dsyn(d), e);      // b[x][li] = D_d
        const std::uint32_t fold = (x + ri) % p_;
        if (fold != p_ - 1) xorops::xor_into(dsyn(fold), br, e);
        x = (x + delta) % p_;
    }

    if (li != 0) {
        // Backward chain: enters each row via the diagonal holding the
        // column-ri unknown (first one has its column-li member imaginary).
        x = (p_ - delta + p_ - 1) % p_;
        while (x != p_ - 1) {
            const std::uint32_t d = (x + ri) % p_;
            if (d == p_ - 1) break;
            std::byte* bl = s.element(x, cl);  // holds R_x
            std::byte* br = s.element(x, cr);
            xorops::copy(br, dsyn(d), e);      // b[x][ri] = D_d
            xorops::xor_into(bl, br, e);       // b[x][li] = R_x ^ b[x][ri]
            const std::uint32_t fold = (x + li) % p_;
            if (fold != p_ - 1) xorops::xor_into(dsyn(fold), bl, e);
            x = (x + p_ - delta) % p_;
        }
    }
}

std::uint32_t rdp_code::apply_update(const stripe_view& s, std::uint32_t row,
                                     std::uint32_t col,
                                     std::span<const std::byte> delta) const {
    check_stripe(s);
    LIBERATION_EXPECTS(row < rows() && col < k_);
    LIBERATION_EXPECTS(delta.size() == s.element_size());
    const std::size_t e = s.element_size();
    std::uint32_t touched = 0;
    // Row parity.
    xorops::xor_into(s.element(row, p_column()), delta.data(), e);
    ++touched;
    // The data bit's own diagonal.
    const std::uint32_t d1 = (row + col) % p_;
    if (d1 != p_ - 1) {
        xorops::xor_into(s.element(d1, q_column()), delta.data(), e);
        ++touched;
    }
    // The row-parity bit it flipped sits on a diagonal too (inner col p-1).
    const std::uint32_t d2 = (row + p_ - 1) % p_;
    if (d2 != p_ - 1) {
        xorops::xor_into(s.element(d2, q_column()), delta.data(), e);
        ++touched;
    }
    return touched;
}

}  // namespace liberation::codes
