// Generic schedule-driven RAID-6 code: everything a bit-matrix generator
// defines — encoding schedule, per-pattern decoding plans, update rule —
// in one reusable base (the Jerasure programming model). Subclasses only
// supply the generator.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "liberation/bitmatrix/generic_code.hpp"
#include "liberation/codes/raid6_code.hpp"

namespace liberation::codes {

class bitmatrix_code : public raid6_code {
public:
    /// `gen` must be a 2w x kw MDS generator (P rows then Q rows).
    /// cache_decode_plans memoizes per-pattern plans; the faithful Jerasure
    /// baseline leaves it off and pays matrix work on every decode call.
    /// packet_size 0 = auto (L1/L2 footprint policy).
    bitmatrix_code(std::string name, std::uint32_t k, std::uint32_t w,
                   bitmatrix::bit_matrix gen, bool cache_decode_plans = false,
                   std::size_t packet_size = 0);

    [[nodiscard]] std::string name() const override { return name_; }
    [[nodiscard]] std::uint32_t k() const noexcept override { return k_; }
    [[nodiscard]] std::uint32_t rows() const noexcept override { return w_; }

    void encode(const stripe_view& stripe) const override;
    void decode(const stripe_view& stripe,
                std::span<const std::uint32_t> erased) const override;
    std::uint32_t apply_update(const stripe_view& stripe, std::uint32_t row,
                               std::uint32_t col,
                               std::span<const std::byte> delta) const override;

    [[nodiscard]] const bitmatrix::bit_matrix& generator() const noexcept {
        return generator_;
    }

    /// XOR count of the compiled encode schedule (complexity benches).
    [[nodiscard]] std::uint64_t encode_xor_count() const noexcept;

    /// XOR count of the decode plan for a pattern (complexity benches).
    [[nodiscard]] std::uint64_t decode_xor_count(
        std::span<const std::uint32_t> erased) const;

private:
    [[nodiscard]] bitmatrix::generic_decode_plan plan_for(
        std::span<const std::uint32_t> erased) const;
    [[nodiscard]] std::size_t effective_packet(std::size_t elem) const noexcept;

    std::string name_;
    std::uint32_t k_;
    std::uint32_t w_;
    bool cache_plans_;
    std::size_t packet_size_;
    bitmatrix::bit_matrix generator_;
    bitmatrix::schedule encode_schedule_;
    mutable std::mutex cache_mutex_;
    mutable std::map<std::vector<std::uint32_t>, bitmatrix::generic_decode_plan>
        plan_cache_;
};

/// Blaum-Roth minimum-density code (cited via [24]): w = p-1 for an odd
/// prime p > k. Column j of the Q parity multiplies by x^j in the ring
/// GF(2)[x] / M_p(x), M_p(x) = 1 + x + ... + x^(p-1). Like Liberation it
/// meets the minimum-density update bound; unlike Liberation its w is p-1.
class blaum_roth_code final : public bitmatrix_code {
public:
    /// Expects odd prime p with k <= p-1 (w = p-1 rows per strip).
    blaum_roth_code(std::uint32_t k, std::uint32_t p,
                    bool cache_decode_plans = false);
    /// Uses the smallest odd prime > k.
    explicit blaum_roth_code(std::uint32_t k);

    [[nodiscard]] std::uint32_t p() const noexcept { return p_; }

private:
    std::uint32_t p_;
};

/// Build the Blaum-Roth generator (exposed for tests).
[[nodiscard]] bitmatrix::bit_matrix blaum_roth_generator(std::uint32_t p,
                                                         std::uint32_t k);

/// Reed-Solomon P+Q projected to a bit matrix over GF(2^8): P row blocks
/// are identities, Q row blocks are the 8x8 bit projections of multiply-
/// by-g^j (the bit-matrix analogue of the Linux RAID-6 scheme, built the
/// way Jerasure turns GF coding into XOR schedules). Supports k <= 254
/// with strips of 8 elements. Dense generator — the comparison point that
/// shows why the sparse array codes win on XOR count.
class rs_bitmatrix_code final : public bitmatrix_code {
public:
    explicit rs_bitmatrix_code(std::uint32_t k,
                               bool cache_decode_plans = false);
};

/// Build the RS bit-matrix generator (exposed for tests).
[[nodiscard]] bitmatrix::bit_matrix rs_bitmatrix_generator(std::uint32_t k);

}  // namespace liberation::codes
