// EVENODD code (Blaum, Brady, Bruck, Menon, 1995) — comparator for the
// complexity figures (paper Figs. 5-8, Table I).
//
// Codeword: (p-1) x (p+2) element array, p odd prime, k <= p data columns
// (columns k..p-1 are phantom zeros). P_i is plain row parity. Q_d is the
// parity of diagonal d (positions i+j == d mod p) XOR the adjuster S, where
// S is the parity of the "missing" diagonal p-1. An imaginary all-zero row
// p-1 completes the geometry.
#pragma once

#include <cstdint>

#include "liberation/codes/raid6_code.hpp"

namespace liberation::codes {

class evenodd_code final : public raid6_code {
public:
    /// Expects odd prime p >= k >= 1.
    evenodd_code(std::uint32_t k, std::uint32_t p);

    /// Uses the smallest odd prime >= k.
    explicit evenodd_code(std::uint32_t k);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::uint32_t k() const noexcept override { return k_; }
    [[nodiscard]] std::uint32_t rows() const noexcept override { return p_ - 1; }
    [[nodiscard]] std::uint32_t p() const noexcept { return p_; }

    void encode(const stripe_view& stripe) const override;
    void decode(const stripe_view& stripe,
                std::span<const std::uint32_t> erased) const override;
    std::uint32_t apply_update(const stripe_view& stripe, std::uint32_t row,
                               std::uint32_t col,
                               std::span<const std::byte> delta) const override;

private:
    // Rebuild helpers, one per erasure shape.
    void decode_two_data(const stripe_view& s, std::uint32_t l,
                         std::uint32_t r) const;
    void decode_data_and_p(const stripe_view& s, std::uint32_t l) const;
    void decode_single_data(const stripe_view& s, std::uint32_t l) const;
    void encode_p_only(const stripe_view& s) const;
    void encode_q_only(const stripe_view& s) const;

    std::uint32_t k_;
    std::uint32_t p_;
};

}  // namespace liberation::codes
