// Stripe model: a rows x cols grid of fixed-size *elements* (paper Fig. 1).
//
// Each column is a *strip* — one disk's contribution to the stripe — stored
// as a contiguous buffer of rows*element_size bytes. Array-code "bits" map
// to elements: all coding operates on whole elements via the xorops
// kernels, which encodes/decodes element_size*8 codewords in parallel
// (the interleaving described in paper Section II-A).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/util/rng.hpp"

namespace liberation::codes {

/// Non-owning view of a stripe. Cheap to copy; column pointers are held by
/// the creator (usually a stripe_buffer or the RAID array's strip cache).
///
/// A view may be a *packet view*: a window of `element_size` bytes at a
/// fixed offset inside each element of a parent view whose elements are
/// `stride` bytes apart. Coding algorithms run unchanged over packet views;
/// the wrappers use them to keep the live stripe footprint cache-resident
/// (the packetization technique of Jerasure's scheduled operations).
class stripe_view {
public:
    stripe_view(std::span<std::byte* const> columns, std::uint32_t rows,
                std::size_t element_size) noexcept
        : cols_(columns),
          rows_(rows),
          elem_(element_size),
          stride_(element_size) {
        LIBERATION_EXPECTS(rows > 0 && element_size > 0);
    }

    [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::uint32_t cols() const noexcept {
        return static_cast<std::uint32_t>(cols_.size());
    }
    [[nodiscard]] std::size_t element_size() const noexcept { return elem_; }
    [[nodiscard]] std::size_t strip_size() const noexcept {
        return rows_ * elem_;
    }

    /// Mutable element region at (row, col).
    [[nodiscard]] std::byte* element(std::uint32_t row,
                                     std::uint32_t col) const noexcept {
        LIBERATION_EXPECTS(row < rows_ && col < cols_.size());
        return cols_[col] + static_cast<std::size_t>(row) * stride_ + offset_;
    }

    [[nodiscard]] std::span<std::byte> element_span(
        std::uint32_t row, std::uint32_t col) const noexcept {
        return {element(row, col), elem_};
    }

    /// Whole strip (column) buffer. Only valid on non-packet views.
    [[nodiscard]] std::span<std::byte> strip(std::uint32_t col) const noexcept {
        LIBERATION_EXPECTS(col < cols_.size());
        LIBERATION_EXPECTS(stride_ == elem_ && offset_ == 0);
        return {cols_[col], strip_size()};
    }

    /// Window of `size` bytes at `offset` within each element.
    [[nodiscard]] stripe_view packet_view(std::size_t offset,
                                          std::size_t size) const noexcept {
        LIBERATION_EXPECTS(offset + size <= elem_);
        stripe_view v = *this;
        v.elem_ = size;
        v.offset_ = offset_ + offset;
        return v;
    }

private:
    std::span<std::byte* const> cols_;
    std::uint32_t rows_;
    std::size_t elem_;    ///< bytes per element visible to coding ops
    std::size_t stride_;  ///< bytes between consecutive rows in a strip
    std::size_t offset_ = 0;
};

/// Packet size that keeps `live_elements` concurrently touched element
/// windows within ~32 KiB (L1-resident): the largest power of two >= 64
/// that fits, clamped to the element size. Returns element_size itself when
/// it does not split evenly — complexity probes with tiny elements then run
/// as a single packet and XOR counts are unaffected.
[[nodiscard]] std::size_t preferred_packet_size(std::size_t live_elements,
                                                std::size_t element_size) noexcept;

/// Owning stripe: one aligned allocation per column strip.
class stripe_buffer {
public:
    stripe_buffer(std::uint32_t rows, std::uint32_t cols,
                  std::size_t element_size)
        : rows_(rows), elem_(element_size) {
        LIBERATION_EXPECTS(rows > 0 && cols > 0 && element_size > 0);
        strips_.reserve(cols);
        ptrs_.reserve(cols);
        for (std::uint32_t c = 0; c < cols; ++c) {
            strips_.emplace_back(static_cast<std::size_t>(rows) * elem_);
            ptrs_.push_back(strips_.back().data());
        }
    }

    [[nodiscard]] stripe_view view() noexcept {
        return stripe_view{{ptrs_.data(), ptrs_.size()}, rows_, elem_};
    }

    [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::uint32_t cols() const noexcept {
        return static_cast<std::uint32_t>(strips_.size());
    }
    [[nodiscard]] std::size_t element_size() const noexcept { return elem_; }

    /// Fill the first `data_cols` strips with deterministic pseudo-random
    /// bytes and zero the rest (parity will be computed by an encoder).
    void fill_random(util::xoshiro256& rng, std::uint32_t data_cols);

    /// Zero every strip.
    void zero();

private:
    std::vector<util::aligned_buffer> strips_;
    std::vector<std::byte*> ptrs_;
    std::uint32_t rows_;
    std::size_t elem_;
};

/// Element-wise equality of two stripes (same geometry required).
[[nodiscard]] bool stripes_equal(const stripe_view& a, const stripe_view& b) noexcept;

/// Byte-wise equality of one column across two stripes.
[[nodiscard]] bool strips_equal(const stripe_view& a, const stripe_view& b,
                                std::uint32_t col) noexcept;

/// Copy stripe contents (same geometry required).
void copy_stripe(const stripe_view& dst, const stripe_view& src) noexcept;

}  // namespace liberation::codes
