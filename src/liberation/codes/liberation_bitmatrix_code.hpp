// The *original* Liberation implementation (Plank FAST'08 / Jerasure [14]):
// encoding and decoding through bit-matrix schedules. This is the baseline
// the paper's optimal algorithms are measured against.
//
// Fidelity notes:
//  * encode uses a schedule compiled once from the 2p x kp generator
//    (cost = ones - rows = 2p(k-1) + (k-1) XORs, the Table I closed form);
//  * decode rebuilds the decoding matrix and re-schedules it on every call
//    — exactly what jerasure_schedule_decode_lazy does, and the source of
//    the baseline's throughput collapse at large p (paper Section IV-B);
//  * schedules execute packet-by-packet like jerasure_do_scheduled_
//    operations.
//
// Setting cache_decode_plans=true memoizes decode plans per erasure
// pattern; use it to isolate pure data-path cost (ablation bench).
#pragma once

#include "liberation/bitmatrix/liberation_matrix.hpp"
#include "liberation/codes/bitmatrix_code.hpp"

namespace liberation::codes {

class liberation_bitmatrix_code final : public bitmatrix_code {
public:
    /// Expects odd prime p >= k >= 1.
    liberation_bitmatrix_code(std::uint32_t k, std::uint32_t p,
                              bool cache_decode_plans = false,
                              std::size_t packet_size = 0);

    /// Uses the smallest odd prime >= k.
    explicit liberation_bitmatrix_code(std::uint32_t k);

    [[nodiscard]] std::uint32_t p() const noexcept { return rows(); }
};

}  // namespace liberation::codes
