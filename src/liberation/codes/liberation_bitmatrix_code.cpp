#include "liberation/codes/liberation_bitmatrix_code.hpp"

#include "liberation/util/primes.hpp"

namespace liberation::codes {

liberation_bitmatrix_code::liberation_bitmatrix_code(std::uint32_t k,
                                                     std::uint32_t p,
                                                     bool cache_decode_plans,
                                                     std::size_t packet_size)
    : bitmatrix_code("liberation_original(k=" + std::to_string(k) +
                         ",p=" + std::to_string(p) + ")",
                     k, p, bitmatrix::liberation_generator(p, k),
                     cache_decode_plans, packet_size) {}

liberation_bitmatrix_code::liberation_bitmatrix_code(std::uint32_t k)
    : liberation_bitmatrix_code(k, util::next_odd_prime(k)) {}

}  // namespace liberation::codes
