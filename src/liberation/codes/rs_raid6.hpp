// Reed-Solomon P+Q (the Linux RAID-6 scheme the paper cites as [7]):
//   P = sum d_j,   Q = sum g^j d_j   over GF(2^8), generator g = 2.
//
// Included as the finite-field comparator substrate: it shows why the
// XOR-only array codes exist (every Q operation is a table-driven GF
// multiply). rows() is a free parameter — each row is an independent RS
// codeword, so any strip depth works.
#pragma once

#include <cstdint>

#include "liberation/codes/raid6_code.hpp"
#include "liberation/gf/gf256.hpp"

namespace liberation::codes {

class rs_raid6_code final : public raid6_code {
public:
    /// Expects 1 <= k <= 254 and rows >= 1.
    explicit rs_raid6_code(std::uint32_t k, std::uint32_t rows = 1);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::uint32_t k() const noexcept override { return k_; }
    [[nodiscard]] std::uint32_t rows() const noexcept override { return rows_; }

    void encode(const stripe_view& stripe) const override;
    void decode(const stripe_view& stripe,
                std::span<const std::uint32_t> erased) const override;
    std::uint32_t apply_update(const stripe_view& stripe, std::uint32_t row,
                               std::uint32_t col,
                               std::span<const std::byte> delta) const override;

private:
    void encode_p_only(const stripe_view& s) const;
    void encode_q_only(const stripe_view& s) const;
    void decode_single_data_rows(const stripe_view& s, std::uint32_t x) const;
    void decode_single_data_q(const stripe_view& s, std::uint32_t x) const;
    void decode_two_data(const stripe_view& s, std::uint32_t x,
                         std::uint32_t y) const;

    std::uint32_t k_;
    std::uint32_t rows_;
};

}  // namespace liberation::codes
