#include "liberation/codes/evenodd.hpp"

#include <algorithm>

#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::codes {

namespace {

/// Accumulate src into dst with the first-touch-copies convention.
class accumulator {
public:
    accumulator(std::byte* dst, std::size_t n) noexcept : dst_(dst), n_(n) {}

    void add(const std::byte* src) noexcept {
        if (fresh_) {
            xorops::copy(dst_, src, n_);
            fresh_ = false;
        } else {
            xorops::xor_into(dst_, src, n_);
        }
    }

    /// If nothing was accumulated, the destination is logically zero.
    void finish() noexcept {
        if (fresh_) xorops::zero(dst_, n_);
    }

private:
    std::byte* dst_;
    std::size_t n_;
    bool fresh_ = true;
};

}  // namespace

evenodd_code::evenodd_code(std::uint32_t k, std::uint32_t p) : k_(k), p_(p) {
    LIBERATION_EXPECTS(k >= 1);
    LIBERATION_EXPECTS(p >= 3 && p % 2 == 1 && util::is_prime(p));
    LIBERATION_EXPECTS(k <= p);
}

evenodd_code::evenodd_code(std::uint32_t k)
    : evenodd_code(k, util::next_odd_prime(k)) {}

std::string evenodd_code::name() const {
    return "evenodd(k=" + std::to_string(k_) + ",p=" + std::to_string(p_) + ")";
}

void evenodd_code::encode(const stripe_view& s) const {
    check_stripe(s);
    encode_p_only(s);
    encode_q_only(s);
}

void evenodd_code::encode_p_only(const stripe_view& s) const {
    const std::size_t e = s.element_size();
    for (std::uint32_t i = 0; i < p_ - 1; ++i) {
        accumulator acc(s.element(i, p_column()), e);
        for (std::uint32_t j = 0; j < k_; ++j) acc.add(s.element(i, j));
        acc.finish();
    }
}

void evenodd_code::encode_q_only(const stripe_view& s) const {
    const std::size_t e = s.element_size();
    // Adjuster S = parity of diagonal p-1 (i+j == p-1; the j == 0 member is
    // the imaginary row). Held in a scratch element.
    util::aligned_buffer s_buf(e);
    {
        accumulator acc(s_buf.data(), e);
        for (std::uint32_t j = 1; j < k_; ++j) acc.add(s.element(p_ - 1 - j, j));
        acc.finish();
    }
    for (std::uint32_t d = 0; d < p_ - 1; ++d) {
        accumulator acc(s.element(d, q_column()), e);
        acc.add(s_buf.data());
        for (std::uint32_t j = 0; j < k_; ++j) {
            const std::uint32_t i = (d + p_ - j) % p_;
            if (i == p_ - 1) continue;  // imaginary row
            acc.add(s.element(i, j));
        }
        acc.finish();
    }
}

void evenodd_code::decode(const stripe_view& s,
                          std::span<const std::uint32_t> erased) const {
    check_stripe(s);
    LIBERATION_EXPECTS(!erased.empty() && erased.size() <= 2);
    const std::uint32_t pc = p_column();
    const std::uint32_t qc = q_column();

    std::uint32_t a = erased[0];
    std::uint32_t b = erased.size() == 2 ? erased[1] : a;
    if (a > b) std::swap(a, b);
    LIBERATION_EXPECTS(b < n());
    LIBERATION_EXPECTS(erased.size() == 1 || a != b);

    if (erased.size() == 1) {
        if (a == pc) {
            encode_p_only(s);
        } else if (a == qc) {
            encode_q_only(s);
        } else {
            decode_single_data(s, a);
        }
        return;
    }
    if (a == pc && b == qc) {  // both parities
        encode(s);
    } else if (b == qc) {  // data + Q
        decode_single_data(s, a);
        encode_q_only(s);
    } else if (b == pc) {  // data + P
        decode_data_and_p(s, a);
    } else {  // two data columns
        decode_two_data(s, a, b);
    }
}

void evenodd_code::decode_single_data(const stripe_view& s,
                                      std::uint32_t l) const {
    // Row parity alone: b[i][l] = P_i XOR (other data in row i).
    const std::size_t e = s.element_size();
    for (std::uint32_t i = 0; i < p_ - 1; ++i) {
        accumulator acc(s.element(i, l), e);
        acc.add(s.element(i, p_column()));
        for (std::uint32_t j = 0; j < k_; ++j) {
            if (j != l) acc.add(s.element(i, j));
        }
        acc.finish();
    }
}

void evenodd_code::decode_data_and_p(const stripe_view& s,
                                     std::uint32_t l) const {
    const std::size_t e = s.element_size();
    // Step 1: recover the adjuster S from a diagonal free of column-l bits.
    // Diagonal (l-1 mod p) has its column-l member in the imaginary row; for
    // l == 0 that diagonal is p-1, whose parity *is* S by definition.
    util::aligned_buffer s_buf(e);
    {
        accumulator acc(s_buf.data(), e);
        const std::uint32_t d = (l + p_ - 1) % p_;
        if (d != p_ - 1) acc.add(s.element(d, q_column()));
        for (std::uint32_t j = 0; j < k_; ++j) {
            if (j == l) continue;
            const std::uint32_t i = (d + p_ - j) % p_;
            if (i == p_ - 1) continue;
            acc.add(s.element(i, j));
        }
        acc.finish();
    }
    // Step 2: every other diagonal yields one missing bit:
    //   b[x][l] = Q_d ^ S ^ surviving members,   d = (x + l) mod p,
    // where diagonal p-1 has no Q element and contributes S alone.
    for (std::uint32_t x = 0; x < p_ - 1; ++x) {
        const std::uint32_t d = (x + l) % p_;
        accumulator acc(s.element(x, l), e);
        acc.add(s_buf.data());
        if (d != p_ - 1) acc.add(s.element(d, q_column()));
        for (std::uint32_t j = 0; j < k_; ++j) {
            if (j == l) continue;
            const std::uint32_t i = (d + p_ - j) % p_;
            if (i == p_ - 1) continue;
            acc.add(s.element(i, j));
        }
        acc.finish();
    }
    encode_p_only(s);
}

void evenodd_code::decode_two_data(const stripe_view& s, std::uint32_t l,
                                   std::uint32_t r) const {
    const std::size_t e = s.element_size();
    const std::uint32_t delta = r - l;

    // S = (XOR of all P elements) ^ (XOR of all Q elements): summing every
    // row parity gives the whole array; summing every diagonal parity gives
    // the whole array plus (p-1)S ^ S-per-row... net S (p odd).
    util::aligned_buffer s_buf(e);
    {
        accumulator acc(s_buf.data(), e);
        for (std::uint32_t i = 0; i < p_ - 1; ++i) acc.add(s.element(i, p_column()));
        for (std::uint32_t i = 0; i < p_ - 1; ++i) acc.add(s.element(i, q_column()));
        acc.finish();
    }

    // Row syndromes into strip l: R_i = P_i ^ surviving data in row i.
    for (std::uint32_t i = 0; i < p_ - 1; ++i) {
        accumulator acc(s.element(i, l), e);
        acc.add(s.element(i, p_column()));
        for (std::uint32_t j = 0; j < k_; ++j) {
            if (j != l && j != r) acc.add(s.element(i, j));
        }
        acc.finish();
    }

    // Diagonal syndromes, one per diagonal d=0..p-1. Diagonal p-1's parity
    // is S itself. Stored in a scratch strip of p elements.
    util::aligned_buffer d_buf(static_cast<std::size_t>(p_) * e);
    for (std::uint32_t d = 0; d < p_; ++d) {
        accumulator acc(d_buf.data() + static_cast<std::size_t>(d) * e, e);
        acc.add(s_buf.data());
        if (d != p_ - 1) acc.add(s.element(d, q_column()));
        for (std::uint32_t j = 0; j < k_; ++j) {
            if (j == l || j == r) continue;
            const std::uint32_t i = (d + p_ - j) % p_;
            if (i == p_ - 1) continue;
            acc.add(s.element(i, j));
        }
        acc.finish();
    }

    // Zigzag: start at the diagonal whose column-r member is imaginary,
    // alternate diagonal -> row. After step t the chain sits at row
    // x_t = ((t+1)*delta - 1) mod p; x hits p-1 after exactly p-1 steps.
    std::uint32_t x = (delta + p_ - 1) % p_;
    for (std::uint32_t t = 0; t + 1 < p_; ++t) {
        LIBERATION_ENSURES(x != p_ - 1);
        const std::uint32_t d = (x + l) % p_;
        // b[x][l] = D_d (all other members known / already folded in).
        std::byte* bl = s.element(x, l);
        // The row syndrome currently stored at (x, l) must be preserved:
        // fold it into b[x][r] instead. Order: compute b[x][l] into place
        // after extracting the row syndrome via b[x][r].
        std::byte* br = s.element(x, r);
        // b[x][r] = R_x ^ b[x][l]; with R_x stored in (x,l):
        //   first br = R_x ^ D_d, then bl = D_d.
        xorops::xor2(br, bl, d_buf.data() + static_cast<std::size_t>(d) * e, e);
        xorops::copy(bl, d_buf.data() + static_cast<std::size_t>(d) * e, e);
        // Fold the recovered b[x][r] into the diagonal that contains it.
        const std::uint32_t d_next = (x + r) % p_;
        xorops::xor_into(d_buf.data() + static_cast<std::size_t>(d_next) * e, br,
                         e);
        x = (x + delta) % p_;
    }
    LIBERATION_ENSURES(x == p_ - 1);
}

std::uint32_t evenodd_code::apply_update(const stripe_view& s,
                                         std::uint32_t row, std::uint32_t col,
                                         std::span<const std::byte> delta) const {
    check_stripe(s);
    LIBERATION_EXPECTS(row < rows() && col < k_);
    LIBERATION_EXPECTS(delta.size() == s.element_size());
    const std::size_t e = s.element_size();
    std::uint32_t touched = 0;
    xorops::xor_into(s.element(row, p_column()), delta.data(), e);
    ++touched;
    if ((row + col) % p_ == p_ - 1) {
        // On the adjuster diagonal: S changes, so every Q element flips.
        for (std::uint32_t d = 0; d < p_ - 1; ++d) {
            xorops::xor_into(s.element(d, q_column()), delta.data(), e);
            ++touched;
        }
        // ...except the bit's own diagonal is p-1 (no Q element), so no
        // double-count correction is needed.
    } else {
        xorops::xor_into(s.element((row + col) % p_, q_column()), delta.data(),
                         e);
        ++touched;
    }
    return touched;
}

}  // namespace liberation::codes
