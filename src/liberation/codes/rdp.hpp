// Row-Diagonal Parity (Corbett et al., FAST'04) — comparator for the
// complexity figures (paper Figs. 5-8, Table I).
//
// Codeword: (p-1) x (p+1) "inner" array, p odd prime: data occupies inner
// columns 0..p-2 (our data columns 0..k-1, k <= p-1, the rest phantom
// zeros), the row-parity column P is inner column p-1, and the diagonal-
// parity column Q covers diagonals 0..p-2 of ALL inner columns including P
// (diagonal p-1 is the "missing" diagonal). An imaginary zero row p-1
// completes the geometry. Because P makes every inner row XOR to zero, the
// two-erasure decoder treats any two inner columns uniformly.
#pragma once

#include <cstdint>

#include "liberation/codes/raid6_code.hpp"

namespace liberation::codes {

class rdp_code final : public raid6_code {
public:
    /// Expects odd prime p with k <= p-1.
    rdp_code(std::uint32_t k, std::uint32_t p);

    /// Uses the smallest odd prime > k (so that k <= p-1).
    explicit rdp_code(std::uint32_t k);

    [[nodiscard]] std::string name() const override;
    [[nodiscard]] std::uint32_t k() const noexcept override { return k_; }
    [[nodiscard]] std::uint32_t rows() const noexcept override { return p_ - 1; }
    [[nodiscard]] std::uint32_t p() const noexcept { return p_; }

    void encode(const stripe_view& stripe) const override;
    void decode(const stripe_view& stripe,
                std::span<const std::uint32_t> erased) const override;
    std::uint32_t apply_update(const stripe_view& stripe, std::uint32_t row,
                               std::uint32_t col,
                               std::span<const std::byte> delta) const override;

private:
    /// Maps an inner column index (0..p-1) to the stripe column holding it,
    /// or to n() if the inner column is a phantom zero.
    [[nodiscard]] std::uint32_t stripe_col(std::uint32_t inner) const noexcept;

    void encode_p_only(const stripe_view& s) const;
    void encode_q_only(const stripe_view& s) const;
    void decode_single_via_rows(const stripe_view& s, std::uint32_t inner) const;
    /// Double-chain zigzag for two erased *inner* columns (li < ri).
    void decode_two_inner(const stripe_view& s, std::uint32_t li,
                          std::uint32_t ri) const;

    std::uint32_t k_;
    std::uint32_t p_;
};

}  // namespace liberation::codes
