#include "liberation/codes/raid6_code.hpp"

#include <cstring>

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::codes {

void raid6_code::encode_crc(const stripe_view& stripe, std::size_t crc_block,
                            std::uint32_t* p_crcs,
                            std::uint32_t* q_crcs) const {
    LIBERATION_EXPECTS(crc_block > 0 &&
                       stripe.strip_size() % crc_block == 0);
    encode(stripe);
    const auto p = stripe.strip(p_column());
    const auto q = stripe.strip(q_column());
    xorops::crc32c_blocks(p.data(), p.size(), crc_block, p_crcs);
    xorops::crc32c_blocks(q.data(), q.size(), crc_block, q_crcs);
}

void raid6_code::check_stripe(const stripe_view& stripe) const {
    LIBERATION_EXPECTS(stripe.rows() == rows());
    LIBERATION_EXPECTS(stripe.cols() == n());
}

bool raid6_code::verify(const stripe_view& stripe) const {
    check_stripe(stripe);
    stripe_buffer scratch(rows(), n(), stripe.element_size());
    const stripe_view sv = scratch.view();
    for (std::uint32_t c = 0; c < k(); ++c) {
        std::memcpy(sv.strip(c).data(), stripe.strip(c).data(),
                    stripe.strip_size());
    }
    encode(sv);
    return strips_equal(sv, stripe, p_column()) &&
           strips_equal(sv, stripe, q_column());
}

std::vector<std::vector<std::uint32_t>> all_two_erasures(std::uint32_t n) {
    std::vector<std::vector<std::uint32_t>> out;
    for (std::uint32_t a = 0; a < n; ++a) {
        for (std::uint32_t b = a + 1; b < n; ++b) {
            out.push_back({a, b});
        }
    }
    return out;
}

std::vector<std::vector<std::uint32_t>> all_two_data_erasures(std::uint32_t k) {
    return all_two_erasures(k);
}

}  // namespace liberation::codes
