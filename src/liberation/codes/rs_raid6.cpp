#include "liberation/codes/rs_raid6.hpp"

#include <algorithm>

#include "liberation/util/aligned_buffer.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::codes {

namespace {
const gf::gf256& field() noexcept { return gf::gf256::instance(); }
}

rs_raid6_code::rs_raid6_code(std::uint32_t k, std::uint32_t rows)
    : k_(k), rows_(rows) {
    LIBERATION_EXPECTS(k >= 1 && k <= 254);
    LIBERATION_EXPECTS(rows >= 1);
}

std::string rs_raid6_code::name() const {
    return "rs_raid6(k=" + std::to_string(k_) + ")";
}

void rs_raid6_code::encode(const stripe_view& s) const {
    check_stripe(s);
    encode_p_only(s);
    encode_q_only(s);
}

void rs_raid6_code::encode_p_only(const stripe_view& s) const {
    const std::size_t e = s.element_size();
    for (std::uint32_t i = 0; i < rows_; ++i) {
        std::byte* dst = s.element(i, p_column());
        xorops::copy(dst, s.element(i, 0), e);
        for (std::uint32_t j = 1; j < k_; ++j) {
            xorops::xor_into(dst, s.element(i, j), e);
        }
    }
}

void rs_raid6_code::encode_q_only(const stripe_view& s) const {
    const std::size_t e = s.element_size();
    for (std::uint32_t i = 0; i < rows_; ++i) {
        std::byte* dst = s.element(i, q_column());
        xorops::copy(dst, s.element(i, 0), e);  // g^0 = 1
        for (std::uint32_t j = 1; j < k_; ++j) {
            field().mul_region_xor(field().pow_g(j), s.element(i, j), dst, e);
        }
    }
}

void rs_raid6_code::decode(const stripe_view& s,
                           std::span<const std::uint32_t> erased) const {
    check_stripe(s);
    LIBERATION_EXPECTS(!erased.empty() && erased.size() <= 2);
    std::uint32_t a = erased[0];
    std::uint32_t b = erased.size() == 2 ? erased[1] : a;
    if (a > b) std::swap(a, b);
    LIBERATION_EXPECTS(b < n());
    LIBERATION_EXPECTS(erased.size() == 1 || a != b);

    if (erased.size() == 1) {
        if (a == p_column()) {
            encode_p_only(s);
        } else if (a == q_column()) {
            encode_q_only(s);
        } else {
            decode_single_data_rows(s, a);
        }
        return;
    }
    if (a == p_column()) {  // P + Q
        encode(s);
    } else if (b == q_column()) {  // data + Q
        decode_single_data_rows(s, a);
        encode_q_only(s);
    } else if (b == p_column()) {  // data + P
        decode_single_data_q(s, a);
        encode_p_only(s);
    } else {  // two data columns
        decode_two_data(s, a, b);
    }
}

void rs_raid6_code::decode_single_data_rows(const stripe_view& s,
                                            std::uint32_t x) const {
    const std::size_t e = s.element_size();
    for (std::uint32_t i = 0; i < rows_; ++i) {
        std::byte* dst = s.element(i, x);
        xorops::copy(dst, s.element(i, p_column()), e);
        for (std::uint32_t j = 0; j < k_; ++j) {
            if (j != x) xorops::xor_into(dst, s.element(i, j), e);
        }
    }
}

void rs_raid6_code::decode_single_data_q(const stripe_view& s,
                                         std::uint32_t x) const {
    // d_x = g^{-x} * (Q ^ sum_{j != x} g^j d_j)
    const std::size_t e = s.element_size();
    util::aligned_buffer tmp(e);
    const std::uint8_t ginv_x = field().inv(field().pow_g(x));
    for (std::uint32_t i = 0; i < rows_; ++i) {
        xorops::copy(tmp.data(), s.element(i, q_column()), e);
        for (std::uint32_t j = 0; j < k_; ++j) {
            if (j == x) continue;
            field().mul_region_xor(field().pow_g(j), s.element(i, j),
                                   tmp.data(), e);
        }
        field().mul_region(ginv_x, tmp.data(), s.element(i, x), e);
    }
}

void rs_raid6_code::decode_two_data(const stripe_view& s, std::uint32_t x,
                                    std::uint32_t y) const {
    // Linux raid6 algebra:
    //   P' = d_x ^ d_y,  Q' = g^x d_x ^ g^y d_y
    //   d_x = A*P' ^ B*Q',  A = g^{y-x}/(g^{y-x}^1),  B = g^{-x}/(g^{y-x}^1)
    //   d_y = P' ^ d_x
    const std::size_t e = s.element_size();
    const std::uint8_t gyx = field().pow_g(y - x);
    const std::uint8_t denom = field().add(gyx, 1);
    LIBERATION_EXPECTS(denom != 0);
    const std::uint8_t coef_a = field().div(gyx, denom);
    const std::uint8_t coef_b =
        field().div(field().inv(field().pow_g(x)), denom);

    util::aligned_buffer pprime(e);
    util::aligned_buffer qprime(e);
    for (std::uint32_t i = 0; i < rows_; ++i) {
        xorops::copy(pprime.data(), s.element(i, p_column()), e);
        xorops::copy(qprime.data(), s.element(i, q_column()), e);
        for (std::uint32_t j = 0; j < k_; ++j) {
            if (j == x || j == y) continue;
            xorops::xor_into(pprime.data(), s.element(i, j), e);
            field().mul_region_xor(field().pow_g(j), s.element(i, j),
                                   qprime.data(), e);
        }
        std::byte* dx = s.element(i, x);
        std::byte* dy = s.element(i, y);
        field().mul_region(coef_a, pprime.data(), dx, e);
        field().mul_region_xor(coef_b, qprime.data(), dx, e);
        xorops::xor2(dy, pprime.data(), dx, e);
    }
}

std::uint32_t rs_raid6_code::apply_update(const stripe_view& s,
                                          std::uint32_t row, std::uint32_t col,
                                          std::span<const std::byte> delta) const {
    check_stripe(s);
    LIBERATION_EXPECTS(row < rows_ && col < k_);
    LIBERATION_EXPECTS(delta.size() == s.element_size());
    const std::size_t e = s.element_size();
    xorops::xor_into(s.element(row, p_column()), delta.data(), e);
    field().mul_region_xor(field().pow_g(col), delta.data(),
                           s.element(row, q_column()), e);
    return 2;
}

}  // namespace liberation::codes
