#include "liberation/codes/bitmatrix_code.hpp"

#include <algorithm>
#include <utility>

#include "liberation/gf/gf256.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/util/primes.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::codes {

bitmatrix_code::bitmatrix_code(std::string name, std::uint32_t k,
                               std::uint32_t w, bitmatrix::bit_matrix gen,
                               bool cache_decode_plans, std::size_t packet_size)
    : name_(std::move(name)),
      k_(k),
      w_(w),
      cache_plans_(cache_decode_plans),
      packet_size_(packet_size),
      generator_(std::move(gen)) {
    LIBERATION_EXPECTS(k_ >= 1 && w_ >= 1);
    LIBERATION_EXPECTS(generator_.rows() == 2 * w_ &&
                       generator_.cols() == k_ * w_);
    const auto inputs = bitmatrix::generic_data_regions(w_, k_);
    const auto outputs = bitmatrix::generic_parity_regions(w_, k_);
    encode_schedule_ =
        bitmatrix::make_smart_schedule(generator_, inputs, outputs);
}

std::size_t bitmatrix_code::effective_packet(std::size_t elem) const noexcept {
    if (packet_size_ != 0) return packet_size_;
    return preferred_packet_size(static_cast<std::size_t>(k_ + 2) * w_, elem);
}

void bitmatrix_code::encode(const stripe_view& s) const {
    check_stripe(s);
    bitmatrix::run_schedule(encode_schedule_, s,
                            effective_packet(s.element_size()));
}

bitmatrix::generic_decode_plan bitmatrix_code::plan_for(
    std::span<const std::uint32_t> erased) const {
    if (!cache_plans_) {
        return bitmatrix::make_generic_decode_plan(generator_, w_, k_, erased);
    }
    std::vector<std::uint32_t> key(erased.begin(), erased.end());
    std::sort(key.begin(), key.end());
    std::lock_guard lock(cache_mutex_);
    auto it = plan_cache_.find(key);
    if (it == plan_cache_.end()) {
        it = plan_cache_
                 .emplace(key, bitmatrix::make_generic_decode_plan(
                                   generator_, w_, k_, erased))
                 .first;
    }
    return it->second;
}

void bitmatrix_code::decode(const stripe_view& s,
                            std::span<const std::uint32_t> erased) const {
    check_stripe(s);
    LIBERATION_EXPECTS(!erased.empty() && erased.size() <= 2);
    const auto plan = plan_for(erased);
    bitmatrix::run_schedule(plan.ops, s, effective_packet(s.element_size()));
}

std::uint32_t bitmatrix_code::apply_update(
    const stripe_view& s, std::uint32_t row, std::uint32_t col,
    std::span<const std::byte> delta) const {
    check_stripe(s);
    LIBERATION_EXPECTS(row < w_ && col < k_);
    LIBERATION_EXPECTS(delta.size() == s.element_size());
    const std::size_t e = s.element_size();
    const std::uint32_t bit = col * w_ + row;
    std::uint32_t touched = 0;
    for (std::uint32_t r = 0; r < 2 * w_; ++r) {
        if (!generator_.get(r, bit)) continue;
        const std::uint32_t pcol = r < w_ ? p_column() : q_column();
        const std::uint32_t prow = r < w_ ? r : r - w_;
        xorops::xor_into(s.element(prow, pcol), delta.data(), e);
        ++touched;
    }
    return touched;
}

std::uint64_t bitmatrix_code::encode_xor_count() const noexcept {
    return bitmatrix::schedule_xor_count(encode_schedule_);
}

std::uint64_t bitmatrix_code::decode_xor_count(
    std::span<const std::uint32_t> erased) const {
    return bitmatrix::schedule_xor_count(plan_for(erased).ops);
}

// ---- Blaum-Roth ----------------------------------------------------------

bitmatrix::bit_matrix blaum_roth_generator(std::uint32_t p, std::uint32_t k) {
    LIBERATION_EXPECTS(p >= 3 && p % 2 == 1 && util::is_prime(p));
    LIBERATION_EXPECTS(k >= 1 && k <= p - 1);
    const std::uint32_t w = p - 1;

    // Multiply-by-x in GF(2)[x] / (1 + x + ... + x^(p-1)):
    //   x * x^j = x^(j+1)              for j < p-2
    //   x * x^(p-2) = x^(p-1) = 1 + x + ... + x^(p-2)
    bitmatrix::bit_matrix t(w, w);
    for (std::uint32_t j = 0; j + 1 < w; ++j) t.set(j + 1, j, true);
    for (std::uint32_t i = 0; i < w; ++i) t.set(i, w - 1, true);

    bitmatrix::bit_matrix gen(2 * w, k * w);
    bitmatrix::bit_matrix power = bitmatrix::bit_matrix::identity(w);  // x^0
    for (std::uint32_t j = 0; j < k; ++j) {
        for (std::uint32_t i = 0; i < w; ++i) {
            // P block: identity.
            gen.set(i, j * w + i, true);
            // Q block: T^j.
            for (std::uint32_t c = 0; c < w; ++c) {
                if (power.get(i, c)) gen.set(w + i, j * w + c, true);
            }
        }
        power = t.multiply(power);
    }
    return gen;
}

blaum_roth_code::blaum_roth_code(std::uint32_t k, std::uint32_t p,
                                 bool cache_decode_plans)
    : bitmatrix_code("blaum_roth(k=" + std::to_string(k) +
                         ",p=" + std::to_string(p) + ")",
                     k, p - 1, blaum_roth_generator(p, k),
                     cache_decode_plans),
      p_(p) {}

blaum_roth_code::blaum_roth_code(std::uint32_t k)
    : blaum_roth_code(k, util::next_odd_prime(k + 1)) {}

// ---- Reed-Solomon bit matrix ----------------------------------------------

bitmatrix::bit_matrix rs_bitmatrix_generator(std::uint32_t k) {
    LIBERATION_EXPECTS(k >= 1 && k <= 254);
    constexpr std::uint32_t w = 8;
    const auto& field = gf::gf256::instance();

    bitmatrix::bit_matrix gen(2 * w, k * w);
    for (std::uint32_t j = 0; j < k; ++j) {
        const std::uint8_t coeff = field.pow_g(j);
        for (std::uint32_t t = 0; t < w; ++t) {
            // P block: identity.
            gen.set(t, j * w + t, true);
            // Q block column t: bits of coeff * x^t in GF(2^8).
            const std::uint8_t prod =
                field.mul(coeff, static_cast<std::uint8_t>(1u << t));
            for (std::uint32_t i = 0; i < w; ++i) {
                if ((prod >> i) & 1u) gen.set(w + i, j * w + t, true);
            }
        }
    }
    return gen;
}

rs_bitmatrix_code::rs_bitmatrix_code(std::uint32_t k, bool cache_decode_plans)
    : bitmatrix_code("rs_bitmatrix(k=" + std::to_string(k) + ")", k, 8,
                     rs_bitmatrix_generator(k), cache_decode_plans) {}

}  // namespace liberation::codes
