#include "liberation/codes/stripe.hpp"

#include <cstring>

namespace liberation::codes {

std::size_t preferred_packet_size(std::size_t live_elements,
                                  std::size_t element_size) noexcept {
    // Keep the live stripe window L2-resident. The floor of 1 KiB keeps
    // per-region-op overhead negligible; stripes that already fit run as a
    // single packet.
    constexpr std::size_t kTargetFootprint = 1024 * 1024;
    constexpr std::size_t kMinPacket = 1024;
    if (live_elements == 0) return element_size;
    const std::size_t budget = kTargetFootprint / live_elements;
    if (budget >= element_size) return element_size;
    std::size_t packet = kMinPacket;
    while (packet * 2 <= budget) packet *= 2;
    if (packet >= element_size || element_size % packet != 0) {
        return element_size;
    }
    return packet;
}

void stripe_buffer::fill_random(util::xoshiro256& rng,
                                std::uint32_t data_cols) {
    LIBERATION_EXPECTS(data_cols <= cols());
    for (std::uint32_t c = 0; c < cols(); ++c) {
        if (c < data_cols) {
            rng.fill(strips_[c].span());
        } else {
            strips_[c].zero();
        }
    }
}

void stripe_buffer::zero() {
    for (auto& s : strips_) s.zero();
}

bool stripes_equal(const stripe_view& a, const stripe_view& b) noexcept {
    if (a.rows() != b.rows() || a.cols() != b.cols() ||
        a.element_size() != b.element_size()) {
        return false;
    }
    for (std::uint32_t c = 0; c < a.cols(); ++c) {
        if (!strips_equal(a, b, c)) return false;
    }
    return true;
}

bool strips_equal(const stripe_view& a, const stripe_view& b,
                  std::uint32_t col) noexcept {
    return std::memcmp(a.strip(col).data(), b.strip(col).data(),
                       a.strip_size()) == 0;
}

void copy_stripe(const stripe_view& dst, const stripe_view& src) noexcept {
    LIBERATION_EXPECTS(dst.rows() == src.rows() && dst.cols() == src.cols() &&
                       dst.element_size() == src.element_size());
    for (std::uint32_t c = 0; c < dst.cols(); ++c) {
        std::memcpy(dst.strip(c).data(), src.strip(c).data(),
                    dst.strip_size());
    }
}

}  // namespace liberation::codes
