// Liberation code bit matrix (Plank, FAST'08) and the generic decoding-
// matrix construction used by the "original" (baseline) decoder.
//
// Conventions:
//   * codeword is a p x (k+2) element array; column k is P, column k+1 is Q
//   * data bit index   = j*p + i   for element (row i, data column j)
//   * parity row index = i         for P_i, and p + i for Q_i
//
// The generator rows are read off the paper's eqs. (1)-(2):
//   P_i = XOR_j b[i][j]
//   Q_i = XOR_j b[(i+j) mod p][j]  (+ extra bit a_i for i != 0, where
//         a_i = b[(-i-1) mod p][(-2i) mod p] — included only when its
//         column is a real (non-phantom) data column)
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "liberation/bitmatrix/bitmatrix.hpp"
#include "liberation/bitmatrix/schedule.hpp"

namespace liberation::bitmatrix {

/// 2p x kp Liberation generator. Expects odd prime p and 1 <= k <= p.
[[nodiscard]] bit_matrix liberation_generator(std::uint32_t p, std::uint32_t k);

/// Region map of the kp data bits: element (i, j) at index j*p + i.
[[nodiscard]] std::vector<region_ref> data_bit_regions(std::uint32_t p,
                                                       std::uint32_t k);

/// Region map of the 2p parity bits: P elements then Q elements.
[[nodiscard]] std::vector<region_ref> parity_bit_regions(std::uint32_t p,
                                                         std::uint32_t k);

/// A compiled decoding plan for one erasure pattern: run `ops` over the
/// stripe and the erased columns are rebuilt in place.
struct decode_plan {
    schedule ops;
    /// Erased *parity* columns that must be re-encoded after the erased
    /// data columns were recovered (by the generator rows inside `ops`).
    std::vector<std::uint32_t> reencoded_parity;
};

/// Build the baseline ("original") decoding plan for up to two erased
/// columns, Jerasure-style:
///   1. choose parity constraints from the surviving parity columns,
///   2. invert the sub-matrix of the erased data bits,
///   3. compose the full decoding matrix  B = A^-1 [M_sel,survivors | I],
///   4. smart-schedule B,
///   5. append (dumb) generator rows for any erased parity column.
/// `erased` holds distinct column indices in [0, k+2).
[[nodiscard]] decode_plan make_bitmatrix_decode_plan(
    std::uint32_t p, std::uint32_t k, std::span<const std::uint32_t> erased,
    bool smart = true);

}  // namespace liberation::bitmatrix
