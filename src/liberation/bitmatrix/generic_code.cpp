#include "liberation/bitmatrix/generic_code.hpp"

#include <algorithm>

#include "liberation/util/assert.hpp"

namespace liberation::bitmatrix {

std::vector<region_ref> generic_data_regions(std::uint32_t w, std::uint32_t k) {
    LIBERATION_EXPECTS(w >= 1 && k >= 1);
    std::vector<region_ref> regions;
    regions.reserve(static_cast<std::size_t>(k) * w);
    for (std::uint32_t j = 0; j < k; ++j) {
        for (std::uint32_t i = 0; i < w; ++i) {
            regions.push_back({j, i});
        }
    }
    return regions;
}

std::vector<region_ref> generic_parity_regions(std::uint32_t w,
                                               std::uint32_t k) {
    LIBERATION_EXPECTS(w >= 1 && k >= 1);
    std::vector<region_ref> regions;
    regions.reserve(2 * static_cast<std::size_t>(w));
    for (std::uint32_t i = 0; i < w; ++i) regions.push_back({k, i});
    for (std::uint32_t i = 0; i < w; ++i) regions.push_back({k + 1, i});
    return regions;
}

generic_decode_plan make_generic_decode_plan(
    const bit_matrix& gen, std::uint32_t w, std::uint32_t k,
    std::span<const std::uint32_t> erased, bool smart) {
    LIBERATION_EXPECTS(gen.rows() == 2 * w && gen.cols() == k * w);
    LIBERATION_EXPECTS(erased.size() <= 2);
    const std::uint32_t n = k + 2;

    std::vector<std::uint32_t> erased_data;
    std::vector<std::uint32_t> erased_parity;
    for (const std::uint32_t c : erased) {
        LIBERATION_EXPECTS(c < n);
        LIBERATION_EXPECTS(std::count(erased.begin(), erased.end(), c) == 1);
        (c < k ? erased_data : erased_parity).push_back(c);
    }

    const auto data_regions = generic_data_regions(w, k);
    const auto parity_regions = generic_parity_regions(w, k);

    generic_decode_plan plan;

    if (!erased_data.empty()) {
        const bool p_alive =
            std::find(erased_parity.begin(), erased_parity.end(), k) ==
            erased_parity.end();
        const bool q_alive =
            std::find(erased_parity.begin(), erased_parity.end(), k + 1) ==
            erased_parity.end();

        std::vector<std::uint32_t> unknown_bits;
        for (const std::uint32_t c : erased_data) {
            for (std::uint32_t i = 0; i < w; ++i) unknown_bits.push_back(c * w + i);
        }
        const auto u = static_cast<std::uint32_t>(unknown_bits.size());

        // Candidate equations: surviving parity rows, sparsest first.
        std::vector<std::uint32_t> candidates;
        if (p_alive) {
            for (std::uint32_t i = 0; i < w; ++i) candidates.push_back(i);
        }
        if (q_alive) {
            for (std::uint32_t i = 0; i < w; ++i) candidates.push_back(w + i);
        }
        LIBERATION_EXPECTS(candidates.size() >= u);

        // Greedy selection of u rows with an invertible restriction.
        const bit_matrix restricted =
            gen.select_rows(candidates).select_cols(unknown_bits);
        std::vector<std::uint32_t> selected;
        std::vector<std::vector<bool>> basis;
        std::vector<std::uint32_t> pivot_of_basis;
        for (std::uint32_t cand = 0;
             cand < candidates.size() && selected.size() < u; ++cand) {
            std::vector<bool> row(u);
            for (std::uint32_t c = 0; c < u; ++c) row[c] = restricted.get(cand, c);
            for (std::size_t b = 0; b < basis.size(); ++b) {
                if (row[pivot_of_basis[b]]) {
                    for (std::uint32_t c = 0; c < u; ++c) {
                        row[c] = row[c] != basis[b][c];
                    }
                }
            }
            const auto pivot = std::find(row.begin(), row.end(), true);
            if (pivot == row.end()) continue;
            pivot_of_basis.push_back(
                static_cast<std::uint32_t>(pivot - row.begin()));
            basis.push_back(std::move(row));
            selected.push_back(candidates[cand]);
        }
        LIBERATION_ENSURES(selected.size() == u);  // MDS generators only

        const bit_matrix a = gen.select_rows(selected).select_cols(unknown_bits);
        const auto a_inv = a.inverted();
        LIBERATION_ENSURES(a_inv.has_value());

        std::vector<std::uint32_t> surviving_bits;
        std::vector<region_ref> inputs;
        for (std::uint32_t j = 0; j < k; ++j) {
            if (std::find(erased_data.begin(), erased_data.end(), j) !=
                erased_data.end()) {
                continue;
            }
            for (std::uint32_t i = 0; i < w; ++i) {
                surviving_bits.push_back(j * w + i);
                inputs.push_back(data_regions[j * w + i]);
            }
        }
        for (const std::uint32_t r : selected) {
            inputs.push_back(parity_regions[r]);
        }

        // B = [ A^-1 * M_selected,survivors | A^-1 ].
        bit_matrix b = *a_inv;
        if (!surviving_bits.empty()) {
            const bit_matrix m_surv =
                gen.select_rows(selected).select_cols(surviving_bits);
            b = a_inv->multiply(m_surv).concat_cols(*a_inv);
        }

        std::vector<region_ref> outputs;
        for (const std::uint32_t bit : unknown_bits) {
            outputs.push_back(data_regions[bit]);
        }

        plan.ops = smart ? make_smart_schedule(b, inputs, outputs)
                         : make_dumb_schedule(b, inputs, outputs);
    }

    for (const std::uint32_t c : erased_parity) {
        plan.reencoded_parity.push_back(c);
        const std::uint32_t base = (c == k) ? 0 : w;
        for (std::uint32_t i = 0; i < w; ++i) {
            bool first = true;
            for (const std::uint32_t bit : gen.row_ones(base + i)) {
                plan.ops.push_back({parity_regions[base + i],
                                    data_regions[bit], first});
                first = false;
            }
        }
    }

    return plan;
}

}  // namespace liberation::bitmatrix
