#include "liberation/bitmatrix/liberation_matrix.hpp"

#include <algorithm>
#include <utility>

#include "liberation/bitmatrix/generic_code.hpp"
#include "liberation/util/assert.hpp"
#include "liberation/util/primes.hpp"

namespace liberation::bitmatrix {

namespace {

void check_geometry(std::uint32_t p, std::uint32_t k) {
    LIBERATION_EXPECTS(p >= 3 && util::is_prime(p) && p % 2 == 1);
    LIBERATION_EXPECTS(k >= 1 && k <= p);
}

}  // namespace

bit_matrix liberation_generator(std::uint32_t p, std::uint32_t k) {
    check_geometry(p, k);
    bit_matrix m(2 * p, k * p);
    for (std::uint32_t i = 0; i < p; ++i) {
        for (std::uint32_t j = 0; j < k; ++j) {
            // P_i covers row i of every data column.
            m.set(i, j * p + i, true);
            // Q_i covers the anti-diagonal member (row (i+j) mod p, col j).
            m.set(p + i, j * p + (i + j) % p, true);
        }
        if (i != 0) {
            // Extra bit a_i = b[(-i-1) mod p][(-2i) mod p], present only if
            // its column is a real data column.
            const std::uint32_t y = (2 * p - 2 * i % (2 * p)) % p;  // (-2i) mod p
            const std::uint32_t x = (p - 1 - i % p + p) % p;        // (-i-1) mod p
            if (y < k) {
                m.set(p + i, y * p + x, true);
            }
        }
    }
    return m;
}

std::vector<region_ref> data_bit_regions(std::uint32_t p, std::uint32_t k) {
    check_geometry(p, k);
    std::vector<region_ref> regions;
    regions.reserve(static_cast<std::size_t>(k) * p);
    for (std::uint32_t j = 0; j < k; ++j) {
        for (std::uint32_t i = 0; i < p; ++i) {
            regions.push_back({j, i});
        }
    }
    return regions;
}

std::vector<region_ref> parity_bit_regions(std::uint32_t p, std::uint32_t k) {
    check_geometry(p, k);
    std::vector<region_ref> regions;
    regions.reserve(2 * static_cast<std::size_t>(p));
    for (std::uint32_t i = 0; i < p; ++i) regions.push_back({k, i});
    for (std::uint32_t i = 0; i < p; ++i) regions.push_back({k + 1, i});
    return regions;
}

decode_plan make_bitmatrix_decode_plan(std::uint32_t p, std::uint32_t k,
                                       std::span<const std::uint32_t> erased,
                                       bool smart) {
    check_geometry(p, k);
    auto generic = make_generic_decode_plan(liberation_generator(p, k), p, k,
                                            erased, smart);
    return {std::move(generic.ops), std::move(generic.reencoded_parity)};
}

}  // namespace liberation::bitmatrix
