#include "liberation/bitmatrix/bitmatrix.hpp"

#include <algorithm>
#include <bit>

#include "liberation/util/assert.hpp"

namespace liberation::bitmatrix {

bit_matrix::bit_matrix(std::uint32_t rows, std::uint32_t cols)
    : rows_(rows), cols_(cols), words_(static_cast<std::size_t>(rows) *
                                       ((cols + 63) / 64)) {
    LIBERATION_EXPECTS(rows > 0 && cols > 0);
}

bit_matrix bit_matrix::identity(std::uint32_t n) {
    bit_matrix m(n, n);
    for (std::uint32_t i = 0; i < n; ++i) m.set(i, i, true);
    return m;
}

bool bit_matrix::get(std::uint32_t r, std::uint32_t c) const noexcept {
    LIBERATION_EXPECTS(r < rows_ && c < cols_);
    return (row_ptr(r)[c / 64] >> (c % 64)) & 1U;
}

void bit_matrix::set(std::uint32_t r, std::uint32_t c, bool v) noexcept {
    LIBERATION_EXPECTS(r < rows_ && c < cols_);
    const std::uint64_t mask = 1ULL << (c % 64);
    if (v) {
        row_ptr(r)[c / 64] |= mask;
    } else {
        row_ptr(r)[c / 64] &= ~mask;
    }
}

void bit_matrix::flip(std::uint32_t r, std::uint32_t c) noexcept {
    LIBERATION_EXPECTS(r < rows_ && c < cols_);
    row_ptr(r)[c / 64] ^= 1ULL << (c % 64);
}

std::uint32_t bit_matrix::row_weight(std::uint32_t r) const noexcept {
    LIBERATION_EXPECTS(r < rows_);
    std::uint32_t w = 0;
    const auto* p = row_ptr(r);
    for (std::size_t i = 0; i < words_per_row(); ++i) {
        w += static_cast<std::uint32_t>(std::popcount(p[i]));
    }
    return w;
}

std::uint32_t bit_matrix::row_distance(std::uint32_t r, const bit_matrix& other,
                                       std::uint32_t s) const noexcept {
    LIBERATION_EXPECTS(cols_ == other.cols_ && r < rows_ && s < other.rows_);
    std::uint32_t d = 0;
    const auto* a = row_ptr(r);
    const auto* b = other.row_ptr(s);
    for (std::size_t i = 0; i < words_per_row(); ++i) {
        d += static_cast<std::uint32_t>(std::popcount(a[i] ^ b[i]));
    }
    return d;
}

std::uint64_t bit_matrix::ones() const noexcept {
    std::uint64_t total = 0;
    for (const auto w : words_) total += static_cast<std::uint64_t>(std::popcount(w));
    return total;
}

void bit_matrix::xor_rows(std::uint32_t dst, std::uint32_t src) noexcept {
    LIBERATION_EXPECTS(dst < rows_ && src < rows_);
    auto* d = row_ptr(dst);
    const auto* s = row_ptr(src);
    for (std::size_t i = 0; i < words_per_row(); ++i) d[i] ^= s[i];
}

void bit_matrix::swap_rows(std::uint32_t a, std::uint32_t b) noexcept {
    LIBERATION_EXPECTS(a < rows_ && b < rows_);
    if (a == b) return;
    auto* pa = row_ptr(a);
    auto* pb = row_ptr(b);
    for (std::size_t i = 0; i < words_per_row(); ++i) std::swap(pa[i], pb[i]);
}

std::vector<std::uint32_t> bit_matrix::row_ones(std::uint32_t r) const {
    LIBERATION_EXPECTS(r < rows_);
    std::vector<std::uint32_t> out;
    const auto* p = row_ptr(r);
    for (std::size_t w = 0; w < words_per_row(); ++w) {
        std::uint64_t word = p[w];
        while (word != 0) {
            const int bit = std::countr_zero(word);
            out.push_back(static_cast<std::uint32_t>(w * 64 +
                                                     static_cast<std::size_t>(bit)));
            word &= word - 1;
        }
    }
    return out;
}

bit_matrix bit_matrix::multiply(const bit_matrix& other) const {
    LIBERATION_EXPECTS(cols_ == other.rows_);
    bit_matrix out(rows_, other.cols_);
    for (std::uint32_t r = 0; r < rows_; ++r) {
        for (const std::uint32_t c : row_ones(r)) {
            auto* d = out.row_ptr(r);
            const auto* s = other.row_ptr(c);
            for (std::size_t i = 0; i < out.words_per_row(); ++i) d[i] ^= s[i];
        }
    }
    return out;
}

std::optional<bit_matrix> bit_matrix::inverted() const {
    LIBERATION_EXPECTS(rows_ == cols_);
    bit_matrix work = *this;
    bit_matrix inv = identity(rows_);
    for (std::uint32_t col = 0; col < cols_; ++col) {
        std::uint32_t pivot = col;
        while (pivot < rows_ && !work.get(pivot, col)) ++pivot;
        if (pivot == rows_) return std::nullopt;
        work.swap_rows(col, pivot);
        inv.swap_rows(col, pivot);
        for (std::uint32_t r = 0; r < rows_; ++r) {
            if (r != col && work.get(r, col)) {
                work.xor_rows(r, col);
                inv.xor_rows(r, col);
            }
        }
    }
    return inv;
}

bit_matrix bit_matrix::select_rows(std::span<const std::uint32_t> row_idx) const {
    LIBERATION_EXPECTS(!row_idx.empty());
    bit_matrix out(static_cast<std::uint32_t>(row_idx.size()), cols_);
    for (std::uint32_t i = 0; i < row_idx.size(); ++i) {
        LIBERATION_EXPECTS(row_idx[i] < rows_);
        auto* d = out.row_ptr(i);
        const auto* s = row_ptr(row_idx[i]);
        std::copy_n(s, words_per_row(), d);
    }
    return out;
}

bit_matrix bit_matrix::select_cols(std::span<const std::uint32_t> col_idx) const {
    LIBERATION_EXPECTS(!col_idx.empty());
    bit_matrix out(rows_, static_cast<std::uint32_t>(col_idx.size()));
    for (std::uint32_t r = 0; r < rows_; ++r) {
        for (std::uint32_t c = 0; c < col_idx.size(); ++c) {
            LIBERATION_EXPECTS(col_idx[c] < cols_);
            if (get(r, col_idx[c])) out.set(r, c, true);
        }
    }
    return out;
}

bit_matrix bit_matrix::concat_cols(const bit_matrix& right) const {
    LIBERATION_EXPECTS(rows_ == right.rows_);
    bit_matrix out(rows_, cols_ + right.cols_);
    for (std::uint32_t r = 0; r < rows_; ++r) {
        for (const std::uint32_t c : row_ones(r)) out.set(r, c, true);
        for (const std::uint32_t c : right.row_ones(r)) {
            out.set(r, cols_ + c, true);
        }
    }
    return out;
}

bool bit_matrix::operator==(const bit_matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           words_ == other.words_;
}

std::uint32_t bit_matrix::rank() const {
    bit_matrix work = *this;
    std::uint32_t rank = 0;
    for (std::uint32_t col = 0; col < cols_ && rank < rows_; ++col) {
        std::uint32_t pivot = rank;
        while (pivot < rows_ && !work.get(pivot, col)) ++pivot;
        if (pivot == rows_) continue;
        work.swap_rows(rank, pivot);
        for (std::uint32_t r = 0; r < rows_; ++r) {
            if (r != rank && work.get(r, col)) work.xor_rows(r, rank);
        }
        ++rank;
    }
    return rank;
}

}  // namespace liberation::bitmatrix
