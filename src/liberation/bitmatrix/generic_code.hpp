// Generic bit-matrix RAID-6 machinery: any P+Q code expressible as a
// 2w x kw generator over GF(2) gets encoding schedules and decoding plans
// from here. Clients: the original Liberation baseline, Blaum-Roth codes
// and Cauchy Reed-Solomon (all Jerasure-style codes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "liberation/bitmatrix/bitmatrix.hpp"
#include "liberation/bitmatrix/schedule.hpp"

namespace liberation::bitmatrix {

/// Region map of the kw data bits of a w-row code: element (i, j) at index
/// j*w + i.
[[nodiscard]] std::vector<region_ref> generic_data_regions(std::uint32_t w,
                                                           std::uint32_t k);

/// Region map of the 2w parity bits: P elements then Q elements.
[[nodiscard]] std::vector<region_ref> generic_parity_regions(std::uint32_t w,
                                                             std::uint32_t k);

struct generic_decode_plan {
    schedule ops;
    std::vector<std::uint32_t> reencoded_parity;
};

/// Baseline decoding plan for any generator (see liberation_matrix.hpp for
/// the construction steps): works for every <= 2-column erasure pattern of
/// an MDS generator. `gen` is 2w x kw with P rows first.
[[nodiscard]] generic_decode_plan make_generic_decode_plan(
    const bit_matrix& gen, std::uint32_t w, std::uint32_t k,
    std::span<const std::uint32_t> erased, bool smart = true);

}  // namespace liberation::bitmatrix
