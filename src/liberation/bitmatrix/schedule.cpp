#include "liberation/bitmatrix/schedule.hpp"

#include <limits>

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::bitmatrix {

std::uint64_t schedule_xor_count(const schedule& s) noexcept {
    std::uint64_t n = 0;
    for (const auto& op : s) {
        if (!op.is_copy) ++n;
    }
    return n;
}

schedule make_dumb_schedule(const bit_matrix& m,
                            std::span<const region_ref> inputs,
                            std::span<const region_ref> outputs) {
    LIBERATION_EXPECTS(inputs.size() == m.cols());
    LIBERATION_EXPECTS(outputs.size() == m.rows());
    schedule s;
    s.reserve(m.ones());
    for (std::uint32_t r = 0; r < m.rows(); ++r) {
        const auto ones = m.row_ones(r);
        LIBERATION_EXPECTS(!ones.empty());
        bool first = true;
        for (const std::uint32_t c : ones) {
            s.push_back({outputs[r], inputs[c], first});
            first = false;
        }
    }
    return s;
}

schedule make_smart_schedule(const bit_matrix& m,
                             std::span<const region_ref> inputs,
                             std::span<const region_ref> outputs) {
    LIBERATION_EXPECTS(inputs.size() == m.cols());
    LIBERATION_EXPECTS(outputs.size() == m.rows());
    const std::uint32_t rows = m.rows();

    // Prim-style greedy (Jerasure's heuristic): every row starts with its
    // from-scratch cost (row weight, as ops); repeatedly emit the cheapest
    // remaining row — from scratch or as base-copy + per-difference XORs —
    // then relax all remaining rows against the newly computed one. Output
    // rows are produced out of order, which is fine: every consumer reads
    // either an input or an already-emitted output.
    constexpr std::uint32_t kScratch = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> cost(rows);
    std::vector<std::uint32_t> base(rows, kScratch);
    std::vector<bool> done(rows, false);
    for (std::uint32_t r = 0; r < rows; ++r) {
        cost[r] = m.row_weight(r);
        LIBERATION_EXPECTS(cost[r] > 0);
    }

    schedule s;
    for (std::uint32_t emitted = 0; emitted < rows; ++emitted) {
        std::uint32_t best = kScratch;
        for (std::uint32_t r = 0; r < rows; ++r) {
            if (!done[r] && (best == kScratch || cost[r] < cost[best])) {
                best = r;
            }
        }
        done[best] = true;

        if (base[best] == kScratch) {
            bool first = true;
            for (const std::uint32_t c : m.row_ones(best)) {
                s.push_back({outputs[best], inputs[c], first});
                first = false;
            }
        } else {
            s.push_back({outputs[best], outputs[base[best]], true});
            for (std::uint32_t c = 0; c < m.cols(); ++c) {
                if (m.get(best, c) != m.get(base[best], c)) {
                    s.push_back({outputs[best], inputs[c], false});
                }
            }
        }

        for (std::uint32_t r = 0; r < rows; ++r) {
            if (done[r]) continue;
            const std::uint32_t d = 1 + m.row_distance(r, m, best);
            if (d < cost[r]) {
                cost[r] = d;
                base[r] = best;
            }
        }
    }
    return s;
}

void run_schedule(const schedule& s, const codes::stripe_view& stripe,
                  std::size_t packet_size) {
    const std::size_t elem = stripe.element_size();
    if (packet_size == 0) packet_size = elem;
    LIBERATION_EXPECTS(packet_size > 0 && elem % packet_size == 0);
    // Jerasure-style: walk packets in the outer loop, the schedule in the
    // inner loop, so the working set per pass is one packet per region.
    for (std::size_t off = 0; off < elem; off += packet_size) {
        for (const auto& op : s) {
            std::byte* dst = stripe.element(op.dst.row, op.dst.col) + off;
            const std::byte* src =
                stripe.element(op.src.row, op.src.col) + off;
            if (op.is_copy) {
                xorops::copy(dst, src, packet_size);
            } else {
                xorops::xor_into(dst, src, packet_size);
            }
        }
    }
}

}  // namespace liberation::bitmatrix
