#include "liberation/bitmatrix/schedule.hpp"

#include <limits>

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::bitmatrix {

std::uint64_t schedule_xor_count(const schedule& s) noexcept {
    std::uint64_t n = 0;
    for (const auto& op : s) {
        if (!op.is_copy) ++n;
    }
    return n;
}

schedule make_dumb_schedule(const bit_matrix& m,
                            std::span<const region_ref> inputs,
                            std::span<const region_ref> outputs) {
    LIBERATION_EXPECTS(inputs.size() == m.cols());
    LIBERATION_EXPECTS(outputs.size() == m.rows());
    schedule s;
    s.reserve(m.ones());
    for (std::uint32_t r = 0; r < m.rows(); ++r) {
        const auto ones = m.row_ones(r);
        LIBERATION_EXPECTS(!ones.empty());
        bool first = true;
        for (const std::uint32_t c : ones) {
            s.push_back({outputs[r], inputs[c], first});
            first = false;
        }
    }
    return s;
}

schedule make_smart_schedule(const bit_matrix& m,
                             std::span<const region_ref> inputs,
                             std::span<const region_ref> outputs) {
    LIBERATION_EXPECTS(inputs.size() == m.cols());
    LIBERATION_EXPECTS(outputs.size() == m.rows());
    const std::uint32_t rows = m.rows();

    // Prim-style greedy (Jerasure's heuristic): every row starts with its
    // from-scratch cost (row weight, as ops); repeatedly emit the cheapest
    // remaining row — from scratch or as base-copy + per-difference XORs —
    // then relax all remaining rows against the newly computed one. Output
    // rows are produced out of order, which is fine: every consumer reads
    // either an input or an already-emitted output.
    constexpr std::uint32_t kScratch = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> cost(rows);
    std::vector<std::uint32_t> base(rows, kScratch);
    std::vector<bool> done(rows, false);
    for (std::uint32_t r = 0; r < rows; ++r) {
        cost[r] = m.row_weight(r);
        LIBERATION_EXPECTS(cost[r] > 0);
    }

    schedule s;
    for (std::uint32_t emitted = 0; emitted < rows; ++emitted) {
        std::uint32_t best = kScratch;
        for (std::uint32_t r = 0; r < rows; ++r) {
            if (!done[r] && (best == kScratch || cost[r] < cost[best])) {
                best = r;
            }
        }
        done[best] = true;

        if (base[best] == kScratch) {
            bool first = true;
            for (const std::uint32_t c : m.row_ones(best)) {
                s.push_back({outputs[best], inputs[c], first});
                first = false;
            }
        } else {
            s.push_back({outputs[best], outputs[base[best]], true});
            for (std::uint32_t c = 0; c < m.cols(); ++c) {
                if (m.get(best, c) != m.get(base[best], c)) {
                    s.push_back({outputs[best], inputs[c], false});
                }
            }
        }

        for (std::uint32_t r = 0; r < rows; ++r) {
            if (done[r]) continue;
            const std::uint32_t d = 1 + m.row_distance(r, m, best);
            if (d < cost[r]) {
                cost[r] = d;
                base[r] = best;
            }
        }
    }
    return s;
}

void run_schedule(const schedule& s, const codes::stripe_view& stripe,
                  std::size_t packet_size) {
    const std::size_t elem = stripe.element_size();
    if (packet_size == 0) packet_size = elem;
    LIBERATION_EXPECTS(packet_size > 0 && elem % packet_size == 0);

    // Fuse maximal runs of consecutive ops sharing a destination into one
    // multi-source reduction each (a copy always opens a run, so both
    // heuristics' output rows fuse whole). Op order within a run commutes;
    // run order is preserved, so schedules whose later rows read earlier
    // *output* rows (the smart heuristic's base rows) stay correct. The
    // counting convention makes the fused execution cost exactly the
    // per-op one: n sources = 1 copy + n-1 XORs (or n XORs headless).
    struct fused_run {
        region_ref dst;
        std::uint32_t first = 0;  ///< index of first op in the run
        std::uint32_t count = 0;  ///< number of ops (== sources)
        bool leading_copy = false;
    };
    std::vector<fused_run> runs;
    runs.reserve(s.size());
    for (std::uint32_t idx = 0; idx < s.size(); ++idx) {
        const auto& op = s[idx];
        if (runs.empty() || op.is_copy || !(runs.back().dst == op.dst)) {
            runs.push_back({op.dst, idx, 1, op.is_copy});
        } else {
            ++runs.back().count;
        }
    }

    std::vector<const std::byte*> srcs;
    // Jerasure-style: walk packets in the outer loop, the runs in the
    // inner loop, so the working set per pass is one packet per region.
    for (std::size_t off = 0; off < elem; off += packet_size) {
        for (const auto& run : runs) {
            std::byte* dst =
                stripe.element(run.dst.row, run.dst.col) + off;
            srcs.clear();
            for (std::uint32_t i = run.first; i < run.first + run.count; ++i) {
                srcs.push_back(
                    stripe.element(s[i].src.row, s[i].src.col) + off);
            }
            if (run.leading_copy) {
                if (run.count == 1) {
                    // A bare copy must stay a copy: xor_many would count it
                    // identically but the dumb/smart schedules never emit
                    // one, and single-op copy is the cheaper call.
                    xorops::copy(dst, srcs[0], packet_size);
                } else {
                    xorops::xor_many(dst, srcs.data(), srcs.size(),
                                     packet_size);
                }
            } else {
                xorops::xor_many_into(dst, srcs.data(), srcs.size(),
                                      packet_size);
            }
        }
    }
}

}  // namespace liberation::bitmatrix
