// Dense bit matrices over GF(2).
//
// This is the substrate the *original* Liberation implementation (Jerasure
// [14]) builds on: codes are w*n x w*k binary matrices, encoding is a
// matrix-vector product over element regions, and decoding inverts the
// sub-matrix of erased columns. Rows are packed 64 bits per word so the
// scheduling heuristics (popcount / hamming distance) are word-parallel.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace liberation::bitmatrix {

class bit_matrix {
public:
    bit_matrix() noexcept = default;

    /// rows x cols zero matrix.
    bit_matrix(std::uint32_t rows, std::uint32_t cols);

    static bit_matrix identity(std::uint32_t n);

    [[nodiscard]] std::uint32_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::uint32_t cols() const noexcept { return cols_; }

    [[nodiscard]] bool get(std::uint32_t r, std::uint32_t c) const noexcept;
    void set(std::uint32_t r, std::uint32_t c, bool v) noexcept;
    void flip(std::uint32_t r, std::uint32_t c) noexcept;

    /// Number of 1 bits in row r.
    [[nodiscard]] std::uint32_t row_weight(std::uint32_t r) const noexcept;

    /// Number of positions where rows r of *this and s of other differ.
    /// Matrices must have equal column counts.
    [[nodiscard]] std::uint32_t row_distance(std::uint32_t r,
                                             const bit_matrix& other,
                                             std::uint32_t s) const noexcept;

    /// Total number of 1 bits.
    [[nodiscard]] std::uint64_t ones() const noexcept;

    /// XOR row src into row dst (row ops of Gaussian elimination).
    void xor_rows(std::uint32_t dst, std::uint32_t src) noexcept;

    void swap_rows(std::uint32_t a, std::uint32_t b) noexcept;

    /// Column indices of the 1 bits in row r, ascending.
    [[nodiscard]] std::vector<std::uint32_t> row_ones(std::uint32_t r) const;

    /// Matrix product over GF(2). Expects cols() == other.rows().
    [[nodiscard]] bit_matrix multiply(const bit_matrix& other) const;

    /// Inverse over GF(2) by Gauss-Jordan; nullopt if singular.
    /// Expects a square matrix.
    [[nodiscard]] std::optional<bit_matrix> inverted() const;

    /// New matrix from the given rows of *this (duplicates allowed).
    [[nodiscard]] bit_matrix select_rows(
        std::span<const std::uint32_t> row_idx) const;

    /// New matrix from the given columns of *this.
    [[nodiscard]] bit_matrix select_cols(
        std::span<const std::uint32_t> col_idx) const;

    /// Horizontal concatenation [ *this | right ]. Row counts must match.
    [[nodiscard]] bit_matrix concat_cols(const bit_matrix& right) const;

    [[nodiscard]] bool operator==(const bit_matrix& other) const noexcept;

    /// Rank over GF(2) (destroys nothing; works on a copy).
    [[nodiscard]] std::uint32_t rank() const;

private:
    [[nodiscard]] std::size_t words_per_row() const noexcept {
        return (cols_ + 63) / 64;
    }
    [[nodiscard]] std::uint64_t* row_ptr(std::uint32_t r) noexcept {
        return words_.data() + r * words_per_row();
    }
    [[nodiscard]] const std::uint64_t* row_ptr(std::uint32_t r) const noexcept {
        return words_.data() + r * words_per_row();
    }

    std::uint32_t rows_ = 0;
    std::uint32_t cols_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace liberation::bitmatrix
