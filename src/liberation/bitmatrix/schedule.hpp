// XOR schedules: straight-line programs of region copy/XOR operations
// compiled from a bit matrix, plus the two Jerasure scheduling heuristics.
//
// * dumb: each output element is the XOR of the input elements named by the
//   1 bits of its matrix row (first term is a copy). Cost = ones(M) - rows.
// * smart: outputs are produced in row order; each row may instead start
//   from the cheapest *previously produced* output row (1 copy + one XOR
//   per differing bit) when that beats computing from scratch. This is the
//   heuristic behind the "original" Liberation decoder's ~1.15(k-1) cost
//   and is the baseline the paper improves on.
//
// The executor mirrors Jerasure's jerasure_do_scheduled_operations: regions
// are processed packet by packet, re-interpreting the schedule for each
// packet. This keeps the baseline's per-operation interpretive overhead
// realistic when we measure throughput against the paper's new algorithms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "liberation/bitmatrix/bitmatrix.hpp"
#include "liberation/codes/stripe.hpp"

namespace liberation::bitmatrix {

/// Names one element region of a stripe.
struct region_ref {
    std::uint32_t col = 0;  ///< strip / device index
    std::uint32_t row = 0;  ///< element index within the strip

    [[nodiscard]] bool operator==(const region_ref&) const noexcept = default;
};

/// One straight-line operation: dst = src (copy) or dst ^= src (xor).
struct schedule_op {
    region_ref dst;
    region_ref src;
    bool is_copy = false;
};

using schedule = std::vector<schedule_op>;

/// Number of XOR (non-copy) ops — the paper's complexity unit.
[[nodiscard]] std::uint64_t schedule_xor_count(const schedule& s) noexcept;

/// Straightforward translation: out[r] = XOR of inputs at the 1 bits of
/// matrix row r. `inputs.size()` must equal m.cols(), `outputs.size()`
/// m.rows(). Zero-weight rows are rejected (a RAID-6 parity is never empty).
[[nodiscard]] schedule make_dumb_schedule(const bit_matrix& m,
                                          std::span<const region_ref> inputs,
                                          std::span<const region_ref> outputs);

/// Jerasure-style smart scheduling (see file header).
[[nodiscard]] schedule make_smart_schedule(const bit_matrix& m,
                                           std::span<const region_ref> inputs,
                                           std::span<const region_ref> outputs);

/// Execute a schedule over a stripe, packet by packet.
/// packet_size must divide the element size; 0 means one packet per element.
void run_schedule(const schedule& s, const codes::stripe_view& stripe,
                  std::size_t packet_size = 0);

}  // namespace liberation::bitmatrix
