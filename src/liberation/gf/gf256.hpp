// GF(2^8) arithmetic with region (bulk) operations.
//
// Substrate for the Reed-Solomon RAID-6 comparator (the scheme the paper
// cites as the Linux RAID-6 reference implementation [7]). Uses the same
// primitive polynomial as Linux raid6: x^8 + x^4 + x^3 + x^2 + 1 (0x11d),
// generator g = 2.
//
// Region operations follow the split-table technique: a 256-entry multiply
// table per constant is precomputed once per (de)coding call and applied
// byte-wise. This is deliberately *not* SIMD-tuned — the RS comparator
// exists to show the XOR codes' advantage, exactly as in the paper's
// framing; optimizing it further is out of scope.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace liberation::gf {

/// GF(2^8) with polynomial 0x11d. All operations are total; division by
/// zero is a checked precondition.
class gf256 {
public:
    /// Access the process-wide table singleton (tables are immutable after
    /// construction; safe to share across threads).
    static const gf256& instance() noexcept;

    [[nodiscard]] std::uint8_t add(std::uint8_t a, std::uint8_t b) const noexcept {
        return a ^ b;
    }

    [[nodiscard]] std::uint8_t mul(std::uint8_t a, std::uint8_t b) const noexcept {
        if (a == 0 || b == 0) return 0;
        return exp_[static_cast<std::size_t>(log_[a]) + log_[b]];
    }

    /// Multiplicative inverse. Expects a != 0.
    [[nodiscard]] std::uint8_t inv(std::uint8_t a) const noexcept;

    /// a / b. Expects b != 0.
    [[nodiscard]] std::uint8_t div(std::uint8_t a, std::uint8_t b) const noexcept;

    /// g^e for generator g=2 (e taken mod 255).
    [[nodiscard]] std::uint8_t pow_g(std::uint32_t e) const noexcept {
        return exp_[e % 255];
    }

    /// discrete log base g of a. Expects a != 0.
    [[nodiscard]] std::uint8_t log_g(std::uint8_t a) const noexcept;

    // ---- region operations ------------------------------------------------

    /// dst[i] ^= c * src[i]. One region op; counted as one XOR toward the
    /// xorops counters (plus table setup, uncounted — same convention the
    /// paper uses when comparing against RS).
    void mul_region_xor(std::uint8_t c, const std::byte* src, std::byte* dst,
                        std::size_t n) const noexcept;

    /// dst[i] = c * src[i].
    void mul_region(std::uint8_t c, const std::byte* src, std::byte* dst,
                    std::size_t n) const noexcept;

private:
    gf256() noexcept;

    std::array<std::uint8_t, 512> exp_{};  // doubled to skip the mod in mul()
    std::array<std::uint8_t, 256> log_{};
};

}  // namespace liberation::gf
