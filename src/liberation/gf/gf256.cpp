#include "liberation/gf/gf256.hpp"

#include "liberation/util/assert.hpp"
#include "liberation/xorops/xorops.hpp"

namespace liberation::gf {

namespace {
constexpr std::uint16_t kPoly = 0x11d;  // x^8+x^4+x^3+x^2+1 (Linux raid6)
}

gf256::gf256() noexcept {
    std::uint16_t x = 1;
    for (std::size_t i = 0; i < 255; ++i) {
        exp_[i] = static_cast<std::uint8_t>(x);
        log_[x] = static_cast<std::uint8_t>(i);
        x <<= 1;
        if (x & 0x100) x ^= kPoly;
    }
    for (std::size_t i = 255; i < 512; ++i) exp_[i] = exp_[i - 255];
    log_[0] = 0;  // unused sentinel
}

const gf256& gf256::instance() noexcept {
    static const gf256 field;
    return field;
}

std::uint8_t gf256::inv(std::uint8_t a) const noexcept {
    LIBERATION_EXPECTS(a != 0);
    return exp_[255 - log_[a]];
}

std::uint8_t gf256::div(std::uint8_t a, std::uint8_t b) const noexcept {
    LIBERATION_EXPECTS(b != 0);
    if (a == 0) return 0;
    return exp_[static_cast<std::size_t>(log_[a]) + 255 - log_[b]];
}

std::uint8_t gf256::log_g(std::uint8_t a) const noexcept {
    LIBERATION_EXPECTS(a != 0);
    return log_[a];
}

void gf256::mul_region_xor(std::uint8_t c, const std::byte* src,
                           std::byte* dst, std::size_t n) const noexcept {
    if (c == 0) return;
    if (c == 1) {
        xorops::xor_into(dst, src, n);
        return;
    }
    // Per-constant lookup table: one 256-byte table amortized over the
    // region (n is typically >= 4 KiB).
    std::uint8_t table[256];
    table[0] = 0;
    const std::size_t lc = log_[c];
    for (std::size_t v = 1; v < 256; ++v) {
        table[v] = exp_[lc + log_[v]];
    }
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] ^= static_cast<std::byte>(
            table[static_cast<std::uint8_t>(src[i])]);
    }
    auto& stats = xorops::counters();
    ++stats.xor_ops;
    stats.bytes_xored += n;
}

void gf256::mul_region(std::uint8_t c, const std::byte* src, std::byte* dst,
                       std::size_t n) const noexcept {
    if (c == 0) {
        xorops::zero(dst, n);
        return;
    }
    if (c == 1) {
        xorops::copy(dst, src, n);
        return;
    }
    std::uint8_t table[256];
    table[0] = 0;
    const std::size_t lc = log_[c];
    for (std::size_t v = 1; v < 256; ++v) {
        table[v] = exp_[lc + log_[v]];
    }
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::byte>(
            table[static_cast<std::uint8_t>(src[i])]);
    }
    auto& stats = xorops::counters();
    ++stats.copy_ops;
    stats.bytes_copied += n;
}

}  // namespace liberation::gf
